"""Integration tests: the paper's qualitative claims, at tiny scale.

Each test pins one sentence of the paper's evaluation to simulator
behaviour.  Tiny-scale runs keep the suite fast; the full-scale numbers
live in the benchmark harness (benchmarks/ and EXPERIMENTS.md).
"""

import pytest

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.workloads import (
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    make_workload,
)


def run(name, policy, oversub, scale="tiny", ts=8, p=8, seed=0):
    cfg = SimulationConfig(seed=seed).with_policy(
        policy, static_threshold=ts, migration_penalty=p)
    return Simulator(cfg).run(make_workload(name, scale),
                              oversubscription=oversub)


class TestOversubscriptionHurts:
    """Figure 1: oversubscription degrades the baseline."""

    @pytest.mark.parametrize("name", ["fdtd", "srad", "nw", "ra", "sssp"])
    def test_125_slower_than_fitting(self, name):
        base = run(name, MigrationPolicy.DISABLED, 0.8)
        over = run(name, MigrationPolicy.DISABLED, 1.25)
        assert over.total_cycles > base.total_cycles

    def test_irregular_degrades_worse_than_regular(self):
        """ra suffers an order of magnitude; fdtd only a factor."""
        fdtd = (run("fdtd", MigrationPolicy.DISABLED, 1.25).total_cycles
                / run("fdtd", MigrationPolicy.DISABLED, 0.8).total_cycles)
        ra = (run("ra", MigrationPolicy.DISABLED, 1.25).total_cycles
              / run("ra", MigrationPolicy.DISABLED, 0.8).total_cycles)
        assert ra > 3 * fdtd

    def test_backprop_immune(self):
        """backprop streams with zero reuse: minimal oversub penalty."""
        base = run("backprop", MigrationPolicy.DISABLED, 0.8)
        over = run("backprop", MigrationPolicy.DISABLED, 1.25)
        assert over.total_cycles <= 1.4 * base.total_cycles


class TestThrashing:
    """Figure 7 mechanics."""

    def test_backprop_never_thrashes(self):
        for pol in MigrationPolicy:
            r = run("backprop", pol, 1.25)
            assert r.pages_thrashed == 0, pol

    @pytest.mark.parametrize("name", ["ra", "nw"])
    def test_adaptive_reduces_thrashing(self, name):
        base = run(name, MigrationPolicy.DISABLED, 1.25)
        adap = run(name, MigrationPolicy.ADAPTIVE, 1.25)
        assert base.pages_thrashed > 0
        assert adap.pages_thrashed < base.pages_thrashed


class TestAdaptiveScheme:
    """Figures 5, 6 and 8."""

    @pytest.mark.parametrize("name", REGULAR_WORKLOADS)
    def test_regular_apps_unaffected_at_oversubscription(self, name):
        base = run(name, MigrationPolicy.DISABLED, 1.25)
        adap = run(name, MigrationPolicy.ADAPTIVE, 1.25)
        assert adap.total_cycles <= 1.15 * base.total_cycles

    @pytest.mark.parametrize("name", REGULAR_WORKLOADS + IRREGULAR_WORKLOADS)
    def test_no_oversubscription_matches_baseline(self, name):
        """Adaptive tracks the baseline when working sets fit (Fig. 5)."""
        base = run(name, MigrationPolicy.DISABLED, 0.8)
        adap = run(name, MigrationPolicy.ADAPTIVE, 0.8)
        assert adap.total_cycles <= 1.3 * base.total_cycles

    def test_ra_improves_under_adaptive(self):
        """The headline case: RandomAccess wins big (Fig. 6)."""
        base = run("ra", MigrationPolicy.DISABLED, 1.25)
        adap = run("ra", MigrationPolicy.ADAPTIVE, 1.25)
        assert adap.total_cycles < 0.6 * base.total_cycles

    def test_adaptive_beats_or_matches_static_schemes_on_ra(self):
        base = run("ra", MigrationPolicy.DISABLED, 1.25)
        always = run("ra", MigrationPolicy.ALWAYS, 1.25)
        adap = run("ra", MigrationPolicy.ADAPTIVE, 1.25)
        assert adap.total_cycles <= always.total_cycles
        assert adap.total_cycles < base.total_cycles

    def test_oversub_scheme_useless_for_ra(self):
        """Blocks flood in before pressure: Oversub ~= baseline (Fig. 6)."""
        base = run("ra", MigrationPolicy.DISABLED, 1.25)
        over = run("ra", MigrationPolicy.OVERSUB, 1.25)
        assert abs(over.total_cycles / base.total_cycles - 1.0) < 0.15

    def test_penalty_monotone_for_ra(self):
        """Figure 8: larger p pins harder and helps ra."""
        times = [run("ra", MigrationPolicy.ADAPTIVE, 1.25, p=p).total_cycles
                 for p in (2, 8)]
        assert times[1] <= times[0]

    def test_extreme_penalty_hurts_regular(self):
        """Figure 8: p = 2^20 degrades dense sequential workloads."""
        normal = run("srad", MigrationPolicy.ADAPTIVE, 1.25, p=8)
        extreme = run("srad", MigrationPolicy.ADAPTIVE, 1.25, p=1 << 20)
        assert extreme.total_cycles > normal.total_cycles

    def test_remote_traffic_only_under_counter_schemes(self):
        assert run("ra", MigrationPolicy.DISABLED, 1.25).events.n_remote == 0
        assert run("ra", MigrationPolicy.ADAPTIVE, 1.25).events.n_remote > 0
