"""Integration tests for the experiment runners (figure harness)."""

import pytest

from repro.analysis import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6_7,
    figure8,
    render_figure2,
    render_figure3,
    run_single,
    table1,
)
from repro.config import MigrationPolicy


SUBSET = ("fdtd", "ra")


class TestTable1:
    def test_renders_all_parameters(self):
        txt = table1()
        for needle in ("Page Size", "45us", "Tree-based", "PCIe 3.0 16x",
                       "2048KB", "1481 MHz"):
            assert needle in txt


class TestRunSingle:
    def test_returns_result(self):
        r = run_single("ra", MigrationPolicy.ADAPTIVE, 1.25, scale="tiny")
        assert r.workload == "ra"
        assert r.total_cycles > 0


class TestFigureRunners:
    def test_figure1_structure(self):
        res = figure1(scale="tiny", subset=SUBSET)
        assert set(res.measured) == {"125% oversub", "150% oversub"}
        for series in res.measured.values():
            assert set(series) == set(SUBSET)
            assert all(v > 0 for v in series.values())
        assert "Figure 1" in res.render()
        assert "paper" in res.render()

    def test_figure2_histograms(self):
        data = figure2(scale="tiny")
        assert set(data) == {"fdtd", "sssp"}
        fdtd_rows = {r["name"]: r for r in data["fdtd"]}
        assert any(name.startswith("fdtd.") for name in fdtd_rows)
        txt = render_figure2(data)
        assert "fdtd" in txt and "acc/page" in txt

    def test_figure2_shows_hot_cold_split_for_sssp(self):
        data = figure2(scale="tiny")
        rows = {r["name"]: r for r in data["sssp"]}
        # Cold read-only edges vs hot read-write distance array.
        assert rows["sssp.edges"]["read_only"]
        assert not rows["sssp.dist"]["read_only"]
        assert rows["sssp.dist"]["accesses_per_page"] > \
            rows["sssp.edges"]["accesses_per_page"]

    def test_figure3_traces_selected_iterations(self):
        data = figure3(scale="tiny")
        fdtd_iters = {rec.iteration for rec in data["fdtd"]}
        assert fdtd_iters == {2}  # tiny preset runs 3 iterations (0..2)
        sssp_iters = {rec.iteration for rec in data["sssp"]}
        assert sssp_iters <= {3, 5}
        assert "Figure 3" in render_figure3(data)

    def test_figure4_normalizes_to_ts8(self):
        res = figure4(scale="tiny", subset=("ra",))
        assert set(res.measured) == {"ts=16", "ts=32"}
        assert res.paper["ts=16"]["ra"] == pytest.approx(0.9294)

    def test_figure5_no_oversub(self):
        res = figure5(scale="tiny", subset=SUBSET)
        assert set(res.measured) == {"always", "adaptive"}
        # Adaptive tracks baseline at no oversubscription.
        for v in res.measured["adaptive"].values():
            assert v == pytest.approx(1.0, abs=0.35)

    def test_figure6_7_share_runs(self):
        f6, f7 = figure6_7(scale="tiny", subset=("ra",))
        assert f6.runs is f7.runs
        assert f6.measured["adaptive"]["ra"] < 1.0
        assert f7.measured["adaptive"]["ra"] < 1.0

    def test_figure8_penalty_series(self):
        res = figure8(scale="tiny", subset=("ra",), penalties=(2, 8))
        assert set(res.measured) == {"p=2", "p=8"}
        assert res.measured["p=8"]["ra"] <= res.measured["p=2"]["ra"] * 1.2
