"""Integration tests: the grid runner against real worker failures.

These kill actual pool worker processes (``os._exit`` bypasses Python
cleanup, exactly like an OOM kill) and assert the two acceptance
properties of the resilience layer: the checkpoint journal stays
consistent through the crash, and a resumed sweep is bit-identical to
an uninterrupted serial run.

The crash/hang stand-ins for ``run_cell`` must be module-level
functions wrapped in :func:`functools.partial` -- the executor pickles
submitted callables, so test closures would break the pool for the
wrong reason.
"""

import functools
import multiprocessing
import os
import time

import pytest

from repro.analysis import parallel
from repro.analysis.checkpoint import CheckpointJournal, cell_key
from repro.analysis.parallel import GridCell, GridOptions, run_grid
from repro.analysis.parallel import run_cell as _real_run_cell
from repro.config import MigrationPolicy

CELLS = [
    GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny", seed=s)
    for s in range(4)
]

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill tests patch run_cell, which requires fork")


def _die_once_run_cell(marker_path, cell):
    """Kill the first worker to run a cell, then behave normally.

    The marker file makes the crash one-shot across pool incarnations;
    ``os._exit`` skips all Python cleanup, like a SIGKILL from the OOM
    killer, and breaks the whole pool.
    """
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("died\n")
        os._exit(3)
    return _real_run_cell(cell)


def _hang_once_run_cell(marker_path, cell):
    """Hang the first worker to run a cell, then behave normally."""
    if not os.path.exists(marker_path):
        with open(marker_path, "w") as fh:
            fh.write("hung\n")
        time.sleep(600)
    return _real_run_cell(cell)


def _exploding_run_cell(cell):
    raise AssertionError("resume re-simulated a journaled cell")


@needs_fork
class TestWorkerCrash:
    def test_grid_survives_killed_worker(self, tmp_path, monkeypatch):
        marker = tmp_path / "died"
        monkeypatch.setattr(
            parallel, "run_cell",
            functools.partial(_die_once_run_cell, str(marker)))
        results = run_grid(CELLS, max_workers=2,
                           options=GridOptions(retry_backoff_s=0.0))
        assert marker.exists()  # a worker really did die
        assert all(r is not None for r in results)
        monkeypatch.undo()
        baseline = run_grid(CELLS, max_workers=1)
        for a, b in zip(results, baseline):
            assert a.total_cycles == b.total_cycles
            assert a.events == b.events

    def test_journal_consistent_after_crash_and_resume_identical(
            self, tmp_path, monkeypatch):
        marker = tmp_path / "died"
        journal_path = tmp_path / "journal.jsonl"
        monkeypatch.setattr(
            parallel, "run_cell",
            functools.partial(_die_once_run_cell, str(marker)))
        run_grid(CELLS, max_workers=2,
                 options=GridOptions(retry_backoff_s=0.0,
                                     checkpoint=str(journal_path)))
        assert marker.exists()

        # Every parseable journal line must be a fully-committed result
        # whose key matches a requested cell (consistency), and the full
        # grid must be present after the crash-recovered run.
        entries = CheckpointJournal(journal_path).load()
        assert set(entries) == {cell_key(c) for c in CELLS}

        # A fresh resume must serve everything from the journal,
        # bit-identical to an uninterrupted serial run.
        monkeypatch.setattr(parallel, "run_cell", _exploding_run_cell)
        resumed = run_grid(
            CELLS, max_workers=1,
            options=GridOptions(checkpoint=str(journal_path), resume=True))
        monkeypatch.undo()
        baseline = run_grid(CELLS, max_workers=1)
        for a, b in zip(resumed, baseline):
            assert a.total_cycles == b.total_cycles
            assert a.timing == b.timing
            assert a.events == b.events


@needs_fork
class TestHangDetection:
    def test_hung_worker_is_terminated_and_retried(self, tmp_path,
                                                   monkeypatch):
        marker = tmp_path / "hung"
        monkeypatch.setattr(
            parallel, "run_cell",
            functools.partial(_hang_once_run_cell, str(marker)))
        cells = CELLS[:2]
        results = run_grid(cells, max_workers=2,
                           options=GridOptions(retries=2,
                                               retry_backoff_s=0.0,
                                               cell_timeout=3.0))
        assert marker.exists()
        assert all(r is not None for r in results)
        monkeypatch.undo()
        baseline = run_grid(cells, max_workers=1)
        for a, b in zip(results, baseline):
            assert a.total_cycles == b.total_cycles
