"""Failure-injection and error-contract tests.

These pin down how the system behaves at its edges: degenerate
capacities, accesses outside managed allocations, corrupted traces, and
graceful degradation paths that must not deadlock or corrupt state.
"""

import numpy as np
import pytest

from repro.config import MigrationPolicy, SimulationConfig
from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import CHUNK_SIZE, MB, PAGES_PER_BLOCK
from repro.uvm.driver import UvmDriver

from tests.conftest import make_driver, make_vas


class TestDegenerateCapacity:
    def test_single_chunk_capacity_makes_progress(self):
        """Capacity of one 2MB chunk: everything thrashes, nothing breaks."""
        drv = make_driver(make_vas(8), capacity_mb=2)
        pages = np.arange(8 * MB // 4096, dtype=np.int64)
        out = drv.process_wave(pages, np.zeros(pages.shape, dtype=bool))
        served = out.n_local + out.n_remote + out.fault_migrations
        assert served == out.n_accesses
        drv.check_consistency()

    def test_fallback_to_remote_when_no_victim(self):
        """If the only chunk is the one being filled, the faulting
        access degrades to remote service instead of deadlocking."""
        vas = make_vas(4)
        drv = make_driver(vas, capacity_mb=2)
        # Fill the single resident chunk from allocation chunk 0.
        first_chunk_pages = np.arange(512, dtype=np.int64)
        drv.process_wave(first_chunk_pages,
                         np.zeros(512, dtype=bool))
        # Touch a block of chunk 1: its chunk is 'never'-protected and
        # chunk 0 is evictable, so this still migrates ...
        out = drv.process_wave(np.array([512]), np.array([False]))
        assert out.fault_migrations == 1
        drv.check_consistency()

    def test_wave_larger_than_capacity(self):
        drv = make_driver(make_vas(16), capacity_mb=2)
        pages = np.arange(16 * MB // 4096, dtype=np.int64)
        out = drv.process_wave(pages, np.ones(pages.shape, dtype=bool))
        assert drv.device.used_blocks <= drv.device.capacity_blocks
        assert out.n_accesses == pages.size


class TestInvalidAccesses:
    def test_alignment_gap_page_rejected(self):
        """Accessing a page no allocation owns is a workload bug: loud."""
        vas = VirtualAddressSpace()
        vas.malloc_managed("a", 64 * 1024)  # leaves a gap to next chunk
        vas.malloc_managed("b", 64 * 1024)
        drv = make_driver(vas, capacity_mb=4)
        gap_page = PAGES_PER_BLOCK + 1  # inside a's alignment padding
        with pytest.raises(RuntimeError):
            drv.process_wave(np.array([gap_page]), np.array([False]))

    def test_negative_counts_rejected(self):
        drv = make_driver(make_vas(4), capacity_mb=4)
        with pytest.raises(Exception):
            from repro.workloads.base import Wave
            Wave(np.array([0]), np.array([False]), np.array([-1]))


class TestTraceCorruption:
    def test_truncated_file(self, tmp_path):
        from repro.trace import load_trace
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"PK\x03\x04 corrupted")
        with pytest.raises(Exception):
            load_trace(bad)

    def test_tampered_offsets(self, tmp_path):
        from repro.trace import load_trace, record_trace, save_trace
        from repro.workloads import make_workload
        import numpy as np
        data = record_trace(make_workload("ra", "tiny"), seed=0)
        data.wave_offsets = data.wave_offsets.copy()
        data.wave_offsets[-1] += 5
        with pytest.raises(ValueError):
            save_trace(data, tmp_path / "x.npz")


class TestConfigMisuse:
    def test_oversub_run_with_explicit_tiny_capacity(self):
        """Explicit capacities below one chunk are rejected up front."""
        with pytest.raises(ValueError):
            SimulationConfig().with_device_capacity(CHUNK_SIZE - 1)

    def test_simulator_rejects_bad_oversubscription(self):
        from repro import Simulator
        from tests.conftest import StreamWorkload
        with pytest.raises(ValueError):
            Simulator(SimulationConfig()).run(StreamWorkload(size_mb=4),
                                              oversubscription=-1.0)

    def test_driver_requires_allocations(self):
        with pytest.raises(ValueError):
            UvmDriver(VirtualAddressSpace(), SimulationConfig())


class TestDeterministicDegradation:
    def test_thrash_storm_is_reproducible(self):
        """Even pathological thrashing is exactly reproducible."""
        def run():
            drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE,
                              capacity_mb=2)
            rng = np.random.default_rng(99)
            for _ in range(10):
                pages = rng.integers(0, 8 * MB // 4096, size=300)
                drv.process_wave(pages, rng.random(300) < 0.5)
            t = drv.stats.totals
            return (t.thrash_migrations, t.evicted_blocks,
                    t.n_remote, t.fault_migrations)
        assert run() == run()
