"""Integration tests: full simulations through the public facade."""

import numpy as np
import pytest

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.memory.layout import MB
from repro.workloads import make_workload

from tests.conftest import RandomWorkload, StreamWorkload


class TestFacade:
    def test_run_returns_result(self):
        cfg = SimulationConfig().with_device_capacity(64 * MB)
        r = Simulator(cfg).run(StreamWorkload(size_mb=4))
        assert r.total_cycles > 0
        assert r.workload == "stream"
        assert r.events.n_accesses > 0
        assert r.footprint_bytes >= 4 * MB

    def test_oversubscription_derives_capacity(self):
        r = Simulator(SimulationConfig()).run(StreamWorkload(size_mb=16),
                                              oversubscription=1.25)
        assert r.oversubscription > 1.1
        assert r.device_capacity_bytes < 16 * MB

    def test_fitting_workload_never_evicts(self):
        r = Simulator(SimulationConfig()).run(StreamWorkload(size_mb=8),
                                              oversubscription=1.0)
        assert r.events.evicted_blocks == 0
        assert r.pages_thrashed == 0

    def test_deterministic_across_runs(self):
        def run():
            cfg = SimulationConfig(seed=11).with_policy(
                MigrationPolicy.ADAPTIVE)
            return Simulator(cfg).run(make_workload("ra", "tiny"),
                                      oversubscription=1.25)
        a, b = run(), run()
        assert a.total_cycles == b.total_cycles
        assert a.events == b.events

    def test_seed_changes_input_dependent_workloads(self):
        def run(seed):
            cfg = SimulationConfig(seed=seed)
            return Simulator(cfg).run(make_workload("bfs", "tiny"),
                                      oversubscription=1.0)
        assert run(1).total_cycles != run(2).total_cycles

    def test_histogram_collection(self):
        cfg = SimulationConfig(collect_page_histogram=True)
        r = Simulator(cfg).run(StreamWorkload(size_mb=4),
                               oversubscription=1.0)
        rows = r.stats.allocation_summary()
        assert rows and rows[0]["reads"] > 0

    def test_trace_collection(self):
        cfg = SimulationConfig(collect_access_trace=True)
        r = Simulator(cfg).run(StreamWorkload(size_mb=4, iterations=2),
                               oversubscription=1.0)
        iters = {rec.iteration for rec in r.stats.trace}
        assert iters == {0, 1}

    def test_empty_workload_rejected(self):
        class Empty(StreamWorkload):
            def _allocate(self, vas, rng):
                pass
        with pytest.raises(ValueError):
            Simulator(SimulationConfig()).run(Empty())


class TestPolicyMatrix:
    @pytest.mark.parametrize("policy", list(MigrationPolicy))
    @pytest.mark.parametrize("oversub", [0.8, 1.25])
    def test_all_policies_complete(self, policy, oversub):
        cfg = SimulationConfig().with_policy(policy)
        r = Simulator(cfg).run(RandomWorkload(size_mb=8), oversub)
        assert r.total_cycles > 0
        served = (r.events.n_local + r.events.n_remote
                  + r.events.fault_migrations)
        assert served == r.events.n_accesses
