"""Unit tests for the UVM driver mechanics."""

import numpy as np
import pytest

from repro.config import MigrationPolicy
from repro.memory.layout import MB, PAGES_PER_BLOCK, PAGES_PER_CHUNK

from tests.conftest import make_driver, make_vas


def pages_of_blocks(*blocks):
    """First page of each given block index."""
    return np.array([b * PAGES_PER_BLOCK for b in blocks], dtype=np.int64)


class TestFirstTouch:
    def test_first_access_migrates(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        out = drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert out.fault_migrations == 1
        assert out.migrated_blocks == 1
        assert out.n_remote == 0
        assert drv.residency.resident[0]
        drv.check_consistency()

    def test_second_access_is_local(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        drv.process_wave(pages_of_blocks(0), np.array([False]))
        out = drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert out.fault_migrations == 0
        assert out.n_local == 1

    def test_write_sets_dirty(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        drv.process_wave(pages_of_blocks(0), np.array([True]))
        drv.process_wave(pages_of_blocks(0), np.array([True]))
        assert drv.residency.dirty[0]

    def test_counts_weighting(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        out = drv.process_wave(pages_of_blocks(0), np.array([False]),
                               counts=np.array([10]))
        assert out.n_accesses == 10
        # first access faults; the rest hit locally after migration
        assert out.n_local == 9
        assert drv.counters.counts[0] == 10

    def test_empty_wave(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        out = drv.process_wave(np.empty(0, dtype=np.int64),
                               np.empty(0, dtype=bool))
        assert out.n_accesses == 0

    def test_shape_mismatch_rejected(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        with pytest.raises(ValueError):
            drv.process_wave(pages_of_blocks(0), np.array([False, True]))


class TestPrefetcher:
    def test_sequential_pages_trigger_prefetch(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        # Touch first pages of blocks 0..4 of one chunk in sequence.
        for b in range(5):
            drv.process_wave(pages_of_blocks(b), np.array([False]))
        assert drv.stats.totals.prefetched_blocks > 0
        drv.check_consistency()

    def test_disabled_prefetcher_never_prefetches(self):
        drv = make_driver(make_vas(8), capacity_mb=16, prefetcher=False)
        for b in range(32):
            drv.process_wave(pages_of_blocks(b), np.array([False]))
        assert drv.stats.totals.prefetched_blocks == 0
        assert drv.stats.totals.fault_migrations == 32

    def test_prefetched_block_hits_locally(self):
        drv = make_driver(make_vas(8), capacity_mb=16)
        for b in (0, 1, 2):   # prefetches block 3
            drv.process_wave(pages_of_blocks(b), np.array([False]))
        assert drv.residency.resident[3]
        out = drv.process_wave(pages_of_blocks(3), np.array([False]))
        assert out.fault_migrations == 0
        assert out.n_local == 1


class TestEvictionPath:
    def test_oversubscription_evicts_whole_chunks(self):
        # 4MB capacity, 8MB allocation: fills then evicts.
        drv = make_driver(make_vas(8), capacity_mb=4)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        for start in range(0, vas_pages.size, PAGES_PER_CHUNK):
            chunk_pages = vas_pages[start:start + PAGES_PER_CHUNK]
            drv.process_wave(chunk_pages,
                             np.zeros(chunk_pages.shape, dtype=bool))
        assert drv.device.oversubscribed
        assert drv.stats.totals.evicted_chunks >= 2
        assert drv.device.used_blocks <= drv.device.capacity_blocks
        drv.check_consistency()

    def test_dirty_eviction_writes_back(self):
        drv = make_driver(make_vas(8), capacity_mb=4)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        drv.process_wave(vas_pages, np.ones(vas_pages.shape, dtype=bool))
        assert drv.stats.totals.writeback_blocks > 0

    def test_clean_eviction_no_writeback(self):
        drv = make_driver(make_vas(8), capacity_mb=4)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        drv.process_wave(vas_pages, np.zeros(vas_pages.shape, dtype=bool))
        assert drv.stats.totals.writeback_blocks == 0

    def test_roundtrips_recorded_on_eviction(self):
        drv = make_driver(make_vas(8), capacity_mb=4)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        drv.process_wave(vas_pages, np.zeros(vas_pages.shape, dtype=bool))
        assert drv.counters.roundtrips.max() >= 1

    def test_thrash_counted_on_remigration(self):
        drv = make_driver(make_vas(8), capacity_mb=4)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        zeros = np.zeros(vas_pages.shape, dtype=bool)
        drv.process_wave(vas_pages, zeros)
        first_pass = drv.stats.totals.thrash_migrations
        drv.process_wave(vas_pages, zeros)   # second sweep re-migrates
        assert drv.stats.totals.thrash_migrations > first_pass
        assert len(drv.stats.thrashed_block_ids) > 0


class TestRemotePath:
    def test_always_policy_serves_below_threshold_remotely(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ALWAYS,
                          capacity_mb=16, ts=8)
        out = drv.process_wave(pages_of_blocks(0), np.array([False]),
                               counts=np.array([3]))
        assert out.n_remote == 3
        assert out.fault_migrations == 0
        assert out.mapping_faults == 1
        assert not drv.residency.resident[0]
        assert drv.host.remote_mapped[0]

    def test_always_policy_migrates_at_threshold(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ALWAYS,
                          capacity_mb=16, ts=8)
        out = drv.process_wave(pages_of_blocks(0), np.array([False]),
                               counts=np.array([20]))
        # 7 remote accesses, the 8th migrates, the rest are local.
        assert out.n_remote == 7
        assert out.fault_migrations == 1
        assert out.n_local == 12
        assert drv.residency.resident[0]

    def test_volta_counter_accumulates_across_waves(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ALWAYS,
                          capacity_mb=16, ts=8)
        for _ in range(7):
            drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert not drv.residency.resident[0]
        out = drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert out.fault_migrations == 1

    def test_mapping_fault_only_once(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ALWAYS,
                          capacity_mb=16, ts=8)
        out1 = drv.process_wave(pages_of_blocks(0), np.array([False]))
        out2 = drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert out1.mapping_faults == 1
        assert out2.mapping_faults == 0


class TestOversubPolicy:
    def test_first_touch_before_pressure(self):
        drv = make_driver(make_vas(8), MigrationPolicy.OVERSUB,
                          capacity_mb=16, ts=8)
        out = drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert out.fault_migrations == 1
        assert out.n_remote == 0

    def test_previously_migrated_blocks_keep_device_preference(self):
        drv = make_driver(make_vas(8), MigrationPolicy.OVERSUB,
                          capacity_mb=4, ts=8, prefetcher=False)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        zeros = np.zeros(vas_pages.shape, dtype=bool)
        drv.process_wave(vas_pages, zeros)   # floods memory, evicts
        assert drv.device.oversubscribed
        # An already-migrated-and-evicted block re-migrates at first touch.
        evicted = int(np.flatnonzero(~drv.residency.resident
                                     & drv.ever_migrated)[0])
        out = drv.process_wave(pages_of_blocks(evicted), np.array([False]))
        assert out.fault_migrations == 1
        assert out.n_remote == 0


class TestAdaptivePolicy:
    def test_first_touch_at_low_occupancy(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE,
                          capacity_mb=64, ts=8, p=8)
        out = drv.process_wave(pages_of_blocks(0), np.array([False]))
        assert out.fault_migrations == 1  # td == 1 below 1/8 occupancy

    def test_oversub_threshold_uses_roundtrips(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE,
                          capacity_mb=4, ts=8, p=8, prefetcher=False)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        zeros = np.zeros(vas_pages.shape, dtype=bool)
        drv.process_wave(vas_pages, zeros)
        assert drv.device.oversubscribed
        evicted = int(np.flatnonzero(~drv.residency.resident)[0])
        c0 = int(drv.counters.counts[evicted])
        td = 8 * (int(drv.counters.roundtrips[evicted]) + 1) * 8
        need = td - c0
        assert need > 1
        # One access below the threshold: stays remote.
        out = drv.process_wave(pages_of_blocks(evicted), np.array([False]))
        assert out.fault_migrations == 0
        assert out.n_remote == 1

    def test_historic_counters_eventually_migrate(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE,
                          capacity_mb=4, ts=8, p=2, prefetcher=False)
        vas_pages = np.arange(8 * MB // 4096, dtype=np.int64)
        zeros = np.zeros(vas_pages.shape, dtype=bool)
        drv.process_wave(vas_pages, zeros)
        evicted = int(np.flatnonzero(~drv.residency.resident)[0])
        out = drv.process_wave(pages_of_blocks(evicted), np.array([False]),
                               counts=np.array([10_000]))
        assert out.fault_migrations == 1


class TestConsistency:
    def test_invariants_after_random_traffic(self):
        rng = np.random.default_rng(3)
        drv = make_driver(make_vas(16), MigrationPolicy.ADAPTIVE,
                          capacity_mb=8)
        total_pages = 16 * MB // 4096
        for _ in range(30):
            pages = rng.integers(0, total_pages, size=200, dtype=np.int64)
            writes = rng.random(200) < 0.3
            drv.process_wave(pages, writes)
        drv.check_consistency()
        assert drv.device.used_blocks <= drv.device.capacity_blocks
