"""Unit tests for tenant attribution and driver chunk teardown."""

import numpy as np
import pytest

from repro.config import MigrationPolicy
from repro.memory.layout import MB
from repro.uvm.attribution import TenantAttribution

from tests.conftest import make_driver, make_vas


def make_attr(owners=(0, 0, 1, 1, -1), n=2):
    return TenantAttribution(np.array(owners, dtype=np.int64), n)


class TestTenantAttribution:
    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            make_attr(n=0)
        with pytest.raises(ValueError):
            make_attr(owners=(0, 5), n=2)

    def test_evictions_charged_to_owners(self):
        a = make_attr()
        a.on_evict(np.array([0, 1, 2, 4]))
        assert a.evicted_blocks.tolist() == [2, 1]

    def test_self_eviction_is_not_interference(self):
        a = make_attr()
        a.current = 0
        a.on_evict(np.array([0, 1, 2, 3]))
        assert a.evicted_blocks.tolist() == [2, 2]
        assert a.cross_evictions.tolist() == [0, 2]

    def test_eviction_without_context_is_all_interference(self):
        a = make_attr()
        a.on_evict(np.array([0, 2]))
        assert a.cross_evictions.tolist() == [1, 1]

    def test_thrash_charged_to_data_owner(self):
        a = make_attr()
        a.current = 1  # thrash charges the *data's* owner, not current
        a.on_thrash(np.array([0, 0, 4]))
        assert a.thrash_migrations.tolist() == [2, 0]
        assert a.thrash_of(0) == 2

    def test_snapshot_is_a_copy(self):
        a = make_attr()
        snap = a.snapshot_thrash()
        a.on_thrash(np.array([0]))
        assert snap.tolist() == [0, 0]


def _touch_all(driver, n_blocks, write=True):
    """Fault every block of the address space in one sweep."""
    from repro.memory.layout import PAGES_PER_BLOCK
    for b in range(0, n_blocks, 8):
        blocks = np.arange(b, min(b + 8, n_blocks))
        pages = blocks * PAGES_PER_BLOCK
        driver.process_wave(pages, np.full(pages.size, write))


class TestReleaseChunks:
    def _driver(self, capacity_mb=16):
        vas = make_vas(4, 4)
        drv = make_driver(vas, MigrationPolicy.ADAPTIVE,
                          capacity_mb=capacity_mb)
        return vas, drv

    def test_release_frees_device_blocks(self):
        vas, drv = self._driver()
        _touch_all(drv, vas.total_blocks)
        assert drv.device.used_blocks > 0
        alloc = vas.allocations[0]
        chunk_ids = [span.chunk_id for span in alloc.chunks]
        before_free = drv.device.free_blocks
        freed, _ = drv.release_chunks(chunk_ids)
        assert freed > 0
        assert drv.device.free_blocks == before_free + freed
        blocks = np.arange(alloc.first_block,
                           alloc.first_block + alloc.num_blocks)
        assert not drv.residency.resident[blocks].any()

    def test_release_counts_dirty_writebacks(self):
        vas, drv = self._driver()
        _touch_all(drv, vas.total_blocks, write=True)
        chunk_ids = [span.chunk_id for a in vas.allocations
                     for span in a.chunks]
        freed, writebacks = drv.release_chunks(chunk_ids)
        assert 0 < writebacks <= freed

    def test_release_adds_no_roundtrips(self):
        """Teardown is free: unlike eviction, no round-trip pollution."""
        vas, drv = self._driver(capacity_mb=64)  # no eviction pressure
        _touch_all(drv, vas.total_blocks)
        assert not drv.counters.has_roundtrips
        chunk_ids = [span.chunk_id for a in vas.allocations
                     for span in a.chunks]
        drv.release_chunks(chunk_ids)
        assert not drv.counters.has_roundtrips
        assert int(drv.counters.roundtrips.sum()) == 0

    def test_release_drops_remote_mappings(self):
        vas, drv = self._driver(capacity_mb=4)  # heavy remote traffic
        _touch_all(drv, vas.total_blocks)
        chunk_ids = [span.chunk_id for a in vas.allocations
                     for span in a.chunks]
        drv.release_chunks(chunk_ids)
        assert not drv.host.remote_mapped.any()

    def test_release_emits_no_eviction_events(self):
        from repro.config import SimulationConfig
        from repro.obs import Observability, RingBufferSink
        from repro.obs.events import Eviction
        from repro.uvm.driver import UvmDriver
        vas = make_vas(4)
        obs = Observability()
        ring = RingBufferSink(4096)
        obs.bus.attach(ring)
        cfg = SimulationConfig().with_policy(
            MigrationPolicy.DISABLED).with_device_capacity(2 * MB)
        drv = UvmDriver(vas, cfg, obs=obs)
        _touch_all(drv, vas.total_blocks)
        pressure_evictions = sum(
            1 for e in ring if isinstance(e, Eviction))
        assert pressure_evictions > 0  # the run itself did evict
        before = len(ring)
        drv.release_chunks([s.chunk_id for a in vas.allocations
                            for s in a.chunks])
        assert len(ring) == before  # teardown emitted nothing

    def test_released_range_can_be_refaulted(self):
        vas, drv = self._driver()
        _touch_all(drv, vas.total_blocks)
        chunk_ids = [span.chunk_id for a in vas.allocations
                     for span in a.chunks]
        drv.release_chunks(chunk_ids)
        _touch_all(drv, vas.total_blocks)  # must not raise
        assert drv.device.used_blocks > 0
