"""Unit tests for the deterministic alert-rule engine."""

import pytest

from repro.obs.live.alerts import AlertEngine, AlertRule


def engine(rules, events=None):
    emit = events.append if events is not None else None
    return AlertEngine(rules=rules, emit=emit)


class TestRuleValidation:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown alert op"):
            AlertRule("r", "m", "==", 1.0)

    def test_rejects_bad_for_ticks(self):
        with pytest.raises(ValueError, match="for_ticks"):
            AlertRule("r", "m", ">", 1.0, for_ticks=0)

    def test_rejects_unknown_scope(self):
        with pytest.raises(ValueError, match="scope"):
            AlertRule("r", "m", ">", 1.0, scope="global")

    def test_rejects_duplicate_names(self):
        rules = (AlertRule("same", "a", ">", 1.0),
                 AlertRule("same", "b", ">", 1.0))
        with pytest.raises(ValueError, match="duplicate"):
            AlertEngine(rules=rules)


class TestEvaluation:
    def test_fires_immediately_with_default_ticks(self):
        events = []
        eng = engine([AlertRule("hot", "m", ">=", 1.0)], events)
        fired = eng.evaluate(10.0, {"m": 2.0})
        assert len(fired) == 1
        assert fired[0].state == "firing"
        assert fired[0].name == "hot" and fired[0].value == 2.0
        assert events == fired
        assert eng.firing() == ["hot"]

    def test_hysteresis_requires_consecutive_breaches(self):
        eng = engine([AlertRule("hot", "m", ">", 1.0, for_ticks=3)])
        assert eng.evaluate(1.0, {"m": 5.0}) == []
        assert eng.evaluate(2.0, {"m": 5.0}) == []
        (fired,) = eng.evaluate(3.0, {"m": 5.0})
        assert fired.state == "firing" and fired.at_us == 3.0

    def test_clean_tick_resets_the_streak(self):
        eng = engine([AlertRule("hot", "m", ">", 1.0, for_ticks=2)])
        eng.evaluate(1.0, {"m": 5.0})
        eng.evaluate(2.0, {"m": 0.0})  # streak broken
        assert eng.evaluate(3.0, {"m": 5.0}) == []
        assert len(eng.evaluate(4.0, {"m": 5.0})) == 1

    def test_resolves_on_first_clean_evaluation(self):
        eng = engine([AlertRule("hot", "m", ">", 1.0)])
        eng.evaluate(1.0, {"m": 5.0})
        (resolved,) = eng.evaluate(2.0, {"m": 0.5})
        assert resolved.state == "resolved"
        assert eng.firing() == []
        # The full firing/resolved history stays in the transcript.
        assert [ev.state for ev in eng.transcript] == ["firing", "resolved"]

    def test_missing_metric_skips_without_state_change(self):
        eng = engine([AlertRule("hot", "m", ">", 1.0, for_ticks=2)])
        eng.evaluate(1.0, {"m": 5.0})
        eng.evaluate(2.0, {"other": 9.0})  # no "m": streak preserved
        (fired,) = eng.evaluate(3.0, {"m": 5.0})
        assert fired.state == "firing"

    def test_rules_evaluate_in_declaration_order(self):
        events = []
        eng = engine([AlertRule("second", "b", ">", 0.0),
                      AlertRule("first", "a", ">", 0.0)], events)
        eng.evaluate(1.0, {"a": 1.0, "b": 1.0})
        # Declaration order, not alphabetical or sample order.
        assert [ev.name for ev in events] == ["second", "first"]

    @pytest.mark.parametrize("op,value,breaches", [
        (">", 1.0, False), (">", 1.1, True),
        (">=", 1.0, True), (">=", 0.9, False),
        ("<", 1.0, False), ("<", 0.9, True),
        ("<=", 1.0, True), ("<=", 1.1, False),
    ])
    def test_comparison_operators(self, op, value, breaches):
        eng = engine([AlertRule("r", "m", op, 1.0)])
        fired = eng.evaluate(1.0, {"m": value})
        assert bool(fired) == breaches


class TestScopes:
    def test_tenant_rules_keep_independent_state(self):
        eng = engine([AlertRule("slow", "lat", ">", 100.0,
                                scope="tenant", for_ticks=2)])
        eng.evaluate(1.0, {"lat": 500.0}, tenant=0)
        eng.evaluate(1.0, {"lat": 500.0}, tenant=1)
        # Each tenant is at streak 1; neither fires yet.
        assert eng.firing() == []
        (fired,) = eng.evaluate(2.0, {"lat": 500.0}, tenant=0)
        assert fired.tenant == 0
        assert eng.count_for(0) == 1 and eng.count_for(1) == 0

    def test_scope_mismatch_skips(self):
        eng = engine([AlertRule("serve_only", "m", ">", 0.0,
                                scope="serve")])
        assert eng.evaluate(1.0, {"m": 5.0}, tenant=3) == []
        assert len(eng.evaluate(1.0, {"m": 5.0}, tenant=-1)) == 1


class TestActions:
    def test_action_called_on_every_transition(self):
        seen = []
        rule = AlertRule("hot", "m", ">", 1.0, action=seen.append)
        eng = AlertEngine(rules=(rule,))
        eng.evaluate(1.0, {"m": 5.0})
        eng.evaluate(2.0, {"m": 0.0})
        assert [ev.state for ev in seen] == ["firing", "resolved"]

    def test_no_action_on_steady_state(self):
        seen = []
        rule = AlertRule("hot", "m", ">", 1.0, action=seen.append)
        eng = AlertEngine(rules=(rule,))
        for at in (1.0, 2.0, 3.0):
            eng.evaluate(at, {"m": 5.0})
        assert len(seen) == 1


class TestDeterminism:
    def test_transcript_replays_bit_identically(self):
        samples = [{"m": float(v)} for v in
                   (5, 5, 0, 5, 5, 5, 0, 0, 5, 5) * 4]

        def run():
            eng = engine([AlertRule("hot", "m", ">=", 3.0, for_ticks=2)])
            for i, sample in enumerate(samples):
                eng.evaluate(float(i), sample)
            return [ev.as_dict() for ev in eng.transcript]

        a, b = run(), run()
        assert a == b and a  # identical and non-trivial
