"""Unit tests for the tree-based prefetcher (ISCA'19 semantics)."""

import numpy as np
import pytest

from repro.uvm.tree import PrefetchTree


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            PrefetchTree(12)

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            PrefetchTree(0)

    def test_single_leaf_chunk(self):
        t = PrefetchTree(1)
        assert t.on_fault(0).size == 0
        assert t.occupancy == 1


class TestFaultSequence:
    def test_sequential_touch_fault_points(self):
        """Sequential sweep of a 32-leaf chunk faults on 0,1,2,4,8,16."""
        t = PrefetchTree(32)
        faults = []
        for leaf in range(32):
            if not t.is_resident(leaf):
                faults.append(leaf)
                t.on_fault(leaf)
        assert faults == [0, 1, 2, 4, 8, 16]
        assert t.occupancy == 32

    def test_first_fault_no_prefetch(self):
        t = PrefetchTree(32)
        assert t.on_fault(7).size == 0
        assert t.occupancy == 1

    def test_second_adjacent_fault_prefetches_balance(self):
        t = PrefetchTree(8)
        t.on_fault(0)
        pf = t.on_fault(1)
        # node(0,1) is full (2/2 > 50%): no absent leaves below it, but
        # node(0..3) is at 2/4 = 50% (not strict) -> no prefetch yet.
        assert pf.size == 0
        pf = t.on_fault(2)
        # node(0..3) now 3/4 > 50% -> leaf 3 prefetched; root 4/8=50%.
        assert list(pf) == [3]

    def test_prefetch_capped_at_half_chunk(self):
        """A fault never prefetches more than half the chunk minus itself."""
        t = PrefetchTree(32)
        t.on_fault(0)
        t.on_fault(1)
        t.on_fault(2)   # prefetches 3
        t.on_fault(4)   # prefetches 5,6,7
        pf = t.on_fault(8)  # prefetches 9..15 (7 leaves)
        assert list(pf) == list(range(9, 16))
        pf = t.on_fault(16)  # prefetches 17..31 (15 leaves = ~1MB)
        assert list(pf) == list(range(17, 32))

    def test_fault_on_resident_leaf_raises(self):
        t = PrefetchTree(4)
        t.on_fault(0)
        with pytest.raises(RuntimeError):
            t.on_fault(0)

    def test_out_of_range_leaf(self):
        t = PrefetchTree(4)
        with pytest.raises(IndexError):
            t.on_fault(4)

    def test_scattered_faults(self):
        t = PrefetchTree(8)
        t.on_fault(7)
        t.on_fault(0)
        pf = t.on_fault(4)
        # node(4..7): 2/4 (leaf 7 + 4) = 50%, root 3/8 -> no prefetch.
        assert pf.size == 0
        t.check_invariants()


class TestBookkeeping:
    def test_clear_resets(self):
        t = PrefetchTree(16)
        for leaf in (0, 1, 2):
            t.on_fault(leaf)
        t.clear()
        assert t.occupancy == 0
        assert t.resident_leaves().size == 0
        t.check_invariants()

    def test_resident_leaves_match_marks(self):
        t = PrefetchTree(8)
        t.mark_resident(3)
        t.mark_resident(6)
        assert list(t.resident_leaves()) == [3, 6]

    def test_invariants_after_mixed_ops(self):
        t = PrefetchTree(32)
        rng = np.random.default_rng(1)
        for leaf in rng.permutation(32):
            if not t.is_resident(int(leaf)):
                t.on_fault(int(leaf))
            t.check_invariants()
        assert t.occupancy == 32
