"""Unit tests for the eight paper workloads (structure and patterns)."""

import numpy as np
import pytest

from repro.memory.allocator import VirtualAddressSpace
from repro.workloads import (
    ALL_WORKLOADS,
    Category,
    IRREGULAR_WORKLOADS,
    REGULAR_WORKLOADS,
    make_workload,
    workload_category,
    workload_names,
)


def build(name, scale="tiny", seed=0):
    wl = make_workload(name, scale)
    wl.build(VirtualAddressSpace(), np.random.default_rng(seed))
    return wl


class TestRegistry:
    def test_names_in_paper_order(self):
        assert workload_names() == ("backprop", "fdtd", "hotspot", "srad",
                                    "bfs", "nw", "ra", "sssp")

    def test_categories(self):
        for name in REGULAR_WORKLOADS:
            assert workload_category(name) is Category.REGULAR
        for name in IRREGULAR_WORKLOADS:
            assert workload_category(name) is Category.IRREGULAR

    def test_unknown_workload(self):
        with pytest.raises(KeyError):
            make_workload("nosuch")

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            make_workload("fdtd", scale="galactic")

    def test_custom_params(self):
        from repro.workloads import FdtdParams
        wl = make_workload("fdtd", params=FdtdParams(ni=128, nj=512))
        assert wl.params.ni == 128


@pytest.mark.parametrize("name", ALL_WORKLOADS)
class TestEveryWorkload:
    def test_builds_and_yields_valid_waves(self, name):
        wl = build(name)
        total_pages = sum(a.num_pages for a in wl.allocations.values())
        assert wl.footprint_bytes > 4 * 2**20, "tiny preset too small"
        n_waves = 0
        n_accesses = 0
        for launch in wl.kernels():
            for wave in launch.waves():
                n_waves += 1
                n_accesses += wave.n_accesses
                if wave.pages.size:
                    assert wave.pages.min() >= 0
                    # every page belongs to an allocation of this workload
                    assert wave.counts.min() >= 1
        assert n_waves > 1
        assert n_accesses > 0

    def test_pages_within_allocations(self, name):
        wl = build(name)
        spans = [(a.first_page, a.last_page)
                 for a in wl.allocations.values()]
        for launch in wl.kernels():
            for wave in launch.waves():
                for page in np.unique(wave.pages):
                    assert any(lo <= page < hi for lo, hi in spans)
            break  # first kernel is enough per workload

    def test_deterministic_for_seed(self, name):
        def fingerprint(seed):
            wl = build(name, seed=seed)
            acc = 0
            for launch in wl.kernels():
                for wave in launch.waves():
                    acc += int(wave.pages.sum()) + wave.n_accesses
            return acc
        assert fingerprint(5) == fingerprint(5)


class TestWorkloadSpecifics:
    def test_backprop_zero_reuse(self):
        """backprop never touches a large-array page twice (Section VI-C)."""
        wl = build("backprop")
        big = {a.first_page: a for a in wl.allocations.values()
               if a.rounded_bytes > 2**20}
        seen = set()
        for launch in wl.kernels():
            for wave in launch.waves():
                for page in np.unique(wave.pages):
                    for a in big.values():
                        if a.first_page <= page < a.last_page:
                            assert page not in seen
                            seen.add(page)

    def test_fdtd_uniform_access_density(self):
        """fdtd pages of one array are accessed equally (Figure 2a)."""
        wl = build("fdtd")
        counts = {}
        for launch in wl.kernels():
            for wave in launch.waves():
                for p, c in zip(wave.pages, wave.counts):
                    counts[int(p)] = counts.get(int(p), 0) + int(c)
        ey = wl.ey
        vals = [counts.get(p, 0)
                for p in range(ey.first_page, ey.first_page + 64)]
        assert max(vals) == min(vals)

    def test_sssp_hot_cold_split(self):
        """sssp distance pages are far hotter than edge pages (Figure 2b)."""
        wl = build("sssp")
        edge_total = np.zeros(1)
        dist_total = np.zeros(1)
        e, d = wl.edges, wl.dist
        for launch in wl.kernels():
            for wave in launch.waves():
                for p, c in zip(wave.pages, wave.counts):
                    if e.first_page <= p < e.last_page:
                        edge_total += c
                    elif d.first_page <= p < d.last_page:
                        dist_total += c
        edge_density = edge_total[0] / e.num_pages
        dist_density = dist_total[0] / d.num_pages
        assert dist_density > 5 * edge_density

    def test_ra_no_reuse_across_waves(self):
        """ra table accesses are uniformly random with negligible reuse."""
        wl = build("ra")
        pages_seen = []
        for launch in wl.kernels():
            for wave in launch.waves():
                pages_seen.append(np.unique(wave.pages))
        all_pages = np.concatenate(pages_seen)
        # Uniformly random updates: no page is much hotter than the mean
        # (there are no hot data structures to pin locally).
        _, counts = np.unique(all_pages, return_counts=True)
        assert counts.max() <= 4 * counts.mean()

    def test_nw_diagonal_structure(self):
        """nw wave count equals the number of anti-diagonals."""
        wl = build("nw")
        launches = list(wl.kernels())
        assert len(launches) == 1
        waves = list(launches[0].waves())
        nb = wl.params.n // wl.params.tile
        assert len(waves) == 2 * nb - 1

    def test_bfs_levels_cover_graph(self):
        """BFS kernel launches equal the number of levels; all reachable."""
        wl = build("bfs")
        launches = list(wl.kernels())
        assert len(launches) >= 3
        # iteration ids are consecutive levels
        assert [k.iteration for k in launches] == list(range(len(launches)))

    def test_hotspot_power_is_read_only(self):
        wl = build("hotspot")
        power = wl.power
        for launch in wl.kernels():
            for wave in launch.waves():
                mask = (wave.pages >= power.first_page) & \
                       (wave.pages < power.last_page)
                assert not wave.is_write[mask].any()

    def test_srad_six_grids(self):
        wl = build("srad")
        assert len(wl.allocations) == 6
