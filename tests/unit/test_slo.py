"""Unit tests for burn-rate math and the SLO engine state machines."""

import math

import pytest

from repro.obs.live.slo import (
    LATENCY,
    SERVICE,
    SHED_RATE,
    THROUGHPUT,
    SloConfig,
    SloEngine,
    burn_rate,
)
from repro.obs.live.windows import WindowAggregate


def agg(count=0, bad=0, total=0.0, vmax=None):
    a = WindowAggregate()
    for i in range(count):
        value = total / count if count else 0.0
        a.observe(value, bad=i < bad)
    if vmax is not None and count:
        a.vmax = vmax
    return a


class TestBurnRate:
    def test_empty_window_burns_nothing(self):
        assert burn_rate(0, 0, 0.05) == 0.0
        assert burn_rate(0, 100, 0.05) == 0.0

    def test_zero_budget_burns_infinitely(self):
        assert burn_rate(1, 100, 0.0) == math.inf

    def test_exact_budget_spend_is_one(self):
        # 5 bad of 100 with a 5% budget: burning exactly on budget.
        assert burn_rate(5, 100, 0.05) == pytest.approx(1.0)

    def test_overspend_scales_linearly(self):
        assert burn_rate(10, 100, 0.05) == pytest.approx(2.0)
        assert burn_rate(20, 100, 0.05) == pytest.approx(4.0)

    def test_all_bad(self):
        assert burn_rate(100, 100, 0.01) == pytest.approx(100.0)


class TestSloConfig:
    def test_disabled_by_default(self):
        cfg = SloConfig()
        assert not cfg.enabled
        cfg.validate()  # all-defaults config is valid, just inert

    def test_any_objective_enables(self):
        assert SloConfig(p99_latency_us=100.0).enabled
        assert SloConfig(max_shed_rate=0.1).enabled
        assert SloConfig(min_throughput=1e5).enabled

    @pytest.mark.parametrize("kwargs", [
        dict(p99_latency_us=-1.0),
        dict(latency_attainment=0.0),
        dict(latency_attainment=1.0),
        dict(max_shed_rate=-0.1),
        dict(max_shed_rate=1.0),
        dict(min_throughput=0.0),
        dict(fast_windows=0),
        dict(fast_windows=5, slow_windows=3),
        dict(burn_threshold=0.0),
    ])
    def test_validate_rejects(self, kwargs):
        with pytest.raises(ValueError):
            SloConfig(**kwargs).validate()

    def test_from_dict_accepts_bare_and_prefixed_keys(self):
        a = SloConfig.from_dict({"p99_latency_us": 200.0,
                                 "max_shed_rate": 0.1})
        b = SloConfig.from_dict({"slo.p99_latency_us": 200.0,
                                 "slo.max_shed_rate": 0.1})
        assert a == b
        assert a.p99_latency_us == 200.0

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown SLO key"):
            SloConfig.from_dict({"p99_latencyus": 200.0})

    def test_from_dict_skips_none(self):
        cfg = SloConfig.from_dict({"p99_latency_us": 200.0,
                                   "max_shed_rate": None})
        assert cfg.max_shed_rate is None

    def test_as_dict_round_trips(self):
        cfg = SloConfig(p99_latency_us=300.0, latency_attainment=0.95,
                        fast_windows=2, slow_windows=8)
        assert SloConfig.from_dict(cfg.as_dict()) == cfg


class TestLatencyEvaluation:
    def engine(self, **kwargs):
        events = []
        cfg = SloConfig(p99_latency_us=100.0, latency_attainment=0.9,
                        burn_threshold=2.0, **kwargs)
        return SloEngine(cfg, emit=events.append), events

    def test_requires_both_windows_burning(self):
        """The multi-window AND rule: fast alone does not violate."""
        engine, events = self.engine()
        hot = agg(count=10, bad=10)   # burn = (10/10)/0.1 = 10
        cold = agg(count=10, bad=0)   # burn = 0
        engine.evaluate_latency(0, 100.0, hot, cold)
        assert events == []
        engine.evaluate_latency(0, 200.0, cold, hot)
        assert events == []
        engine.evaluate_latency(0, 300.0, hot, hot)
        assert len(events) == 1
        assert events[0].kind == "slo_violation"
        assert events[0].objective == LATENCY
        assert events[0].tenant == 0

    def test_emits_on_transition_only(self):
        engine, events = self.engine()
        hot = agg(count=10, bad=10)
        for at in (100.0, 200.0, 300.0):
            engine.evaluate_latency(0, at, hot, hot)
        assert len(events) == 1  # still violating, no re-emission
        cold = agg(count=10, bad=0)
        engine.evaluate_latency(0, 400.0, cold, cold)  # recovers
        engine.evaluate_latency(0, 500.0, hot, hot)    # violates again
        assert len(events) == 2
        assert engine.total_violations() == 2
        assert engine.violations_of(0) == 2
        assert engine.violations_of(1) == 0

    def test_tenants_are_independent(self):
        engine, events = self.engine()
        hot = agg(count=10, bad=10)
        engine.evaluate_latency(0, 100.0, hot, hot)
        engine.evaluate_latency(1, 100.0, agg(count=10), agg(count=10))
        assert [ev.tenant for ev in events] == [0]

    def test_disabled_objective_is_inert(self):
        events = []
        engine = SloEngine(SloConfig(max_shed_rate=0.5),
                           emit=events.append)
        engine.evaluate_latency(0, 100.0, agg(count=10, bad=10),
                                agg(count=10, bad=10))
        assert events == []


class TestShedEvaluation:
    def test_zero_budget_any_shed_violates(self):
        events = []
        engine = SloEngine(SloConfig(max_shed_rate=0.0),
                           emit=events.append)
        shed = agg(count=10, bad=1)
        engine.evaluate_shed(100.0, shed, shed)
        assert len(events) == 1
        assert events[0].tenant == SERVICE
        assert events[0].objective == SHED_RATE

    def test_within_budget_is_clean(self):
        events = []
        engine = SloEngine(SloConfig(max_shed_rate=0.5),
                           emit=events.append)
        ok = agg(count=10, bad=2)  # 20% shed, burn 0.4 < 2.0
        engine.evaluate_shed(100.0, ok, ok)
        assert events == []


class TestThroughputEvaluation:
    def test_floor_breach_on_both_horizons(self):
        events = []
        engine = SloEngine(SloConfig(min_throughput=1e6),
                           emit=events.append)
        slow_agg = WindowAggregate()
        slow_agg.observe(100.0)  # 100 accesses over 1ms = 1e5/s
        engine.evaluate_throughput(0, 100.0, slow_agg, slow_agg,
                                   fast_span_us=1000.0,
                                   slow_span_us=1000.0)
        assert len(events) == 1
        assert events[0].objective == THROUGHPUT

    def test_meeting_the_floor_is_clean_and_counts_good(self):
        engine = SloEngine(SloConfig(min_throughput=1e3))
        fast = WindowAggregate()
        fast.observe(5000.0)  # 5000 accesses over 1ms = 5e6/s
        engine.evaluate_throughput(0, 100.0, fast, fast,
                                   fast_span_us=1000.0,
                                   slow_span_us=1000.0)
        assert engine.attainment_of(0) == 1.0


class TestAttainment:
    def test_cumulative_latency_attainment(self):
        engine = SloEngine(SloConfig(p99_latency_us=100.0,
                                     latency_attainment=0.9))
        engine.record_latency_window(0, agg(count=8, bad=0))
        engine.record_latency_window(0, agg(count=2, bad=2))
        assert engine.attainment_of(0) == pytest.approx(0.8)

    def test_worst_objective_wins(self):
        engine = SloEngine(SloConfig(p99_latency_us=100.0,
                                     min_throughput=1e9))
        engine.record_latency_window(0, agg(count=10, bad=0))  # 1.0
        starved = WindowAggregate()
        starved.observe(1.0)
        engine.evaluate_throughput(0, 50.0, starved, starved,
                                   fast_span_us=1000.0,
                                   slow_span_us=1000.0)  # 0.0
        assert engine.attainment_of(0) == 0.0

    def test_no_data_is_none(self):
        engine = SloEngine(SloConfig(p99_latency_us=100.0))
        assert engine.attainment_of(5) is None

    def test_finish_tenant_emits_verdicts(self):
        events = []
        engine = SloEngine(SloConfig(p99_latency_us=100.0,
                                     latency_attainment=0.9),
                           emit=events.append)
        engine.record_latency_window(0, agg(count=20, bad=1))
        engine.finish_tenant(0, 999.0)
        (verdict,) = events
        assert verdict.kind == "slo_attainment"
        assert verdict.attainment == pytest.approx(0.95)
        assert verdict.target == 0.9
        assert verdict.met

    def test_finish_emits_service_verdicts(self):
        events = []
        engine = SloEngine(SloConfig(max_shed_rate=0.1),
                           emit=events.append)
        engine.record_shed_window(agg(count=10, bad=5))
        engine.finish(1000.0)
        (verdict,) = events
        assert verdict.tenant == SERVICE
        assert not verdict.met
