"""Unit tests for the R-MAT and grid graph generators."""

import numpy as np
import pytest

from repro.memory.allocator import VirtualAddressSpace
from repro.workloads.bfs import Bfs, BfsParams
from repro.workloads.graphs import grid_graph, make_graph, rmat_graph


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestRmat:
    def test_valid_csr(self, rng):
        g = rmat_graph(1 << 12, 6.0, rng)
        g.validate()
        assert g.num_nodes == 1 << 12
        assert g.num_edges >= g.num_nodes  # chain guarantees >= 1 per node

    def test_heavy_tail(self, rng):
        """R-MAT in-degrees are far more skewed than uniform random."""
        g = rmat_graph(1 << 13, 8.0, rng, connect_chain=False)
        indeg = np.bincount(g.dst.astype(np.int64), minlength=g.num_nodes)
        assert indeg.max() > 20 * max(indeg.mean(), 1)

    def test_chain_reachability(self, rng):
        g = rmat_graph(1 << 10, 4.0, rng)
        node, seen = 0, {0}
        for _ in range(g.num_nodes):
            node = int(g.dst[g.ptr[node]])
            seen.add(node)
        assert len(seen) == g.num_nodes

    def test_rejects_non_power_of_two(self, rng):
        with pytest.raises(ValueError):
            rmat_graph(1000, 4.0, rng)

    def test_rejects_bad_probabilities(self, rng):
        with pytest.raises(ValueError):
            rmat_graph(1 << 10, 4.0, rng, a=0.6, b=0.3, c=0.3)

    def test_deterministic(self):
        a = rmat_graph(1 << 10, 4.0, np.random.default_rng(1))
        b = rmat_graph(1 << 10, 4.0, np.random.default_rng(1))
        assert np.array_equal(a.dst, b.dst)


class TestGrid:
    def test_valid_csr(self, rng):
        g = grid_graph(16, 8, rng)
        g.validate()
        assert g.num_nodes == 128

    def test_degrees_between_2_and_4(self, rng):
        g = grid_graph(8, 8, rng)
        deg = g.degrees()
        assert deg.min() == 2   # corners
        assert deg.max() == 4   # interior

    def test_edges_are_lattice_neighbors(self, rng):
        width = 8
        g = grid_graph(width, 8, rng)
        for v in range(g.num_nodes):
            for e in range(g.ptr[v], g.ptr[v + 1]):
                u = int(g.dst[e])
                dx = abs(u % width - v % width)
                dy = abs(u // width - v // width)
                assert dx + dy == 1

    def test_rejects_degenerate(self, rng):
        with pytest.raises(ValueError):
            grid_graph(1, 8, rng)


class TestMakeGraph:
    @pytest.mark.parametrize("kind", ["random", "rmat", "grid"])
    def test_families_build(self, kind, rng):
        g = make_graph(kind, 1 << 10, 6.0, rng)
        g.validate()

    def test_unknown_kind(self, rng):
        with pytest.raises(ValueError):
            make_graph("hypercube", 64, 4.0, rng)

    def test_grid_rounds_to_square(self, rng):
        g = make_graph("grid", 1000, 4.0, rng)
        side = int(round(g.num_nodes ** 0.5))
        assert side * side == g.num_nodes


class TestBfsOnFamilies:
    def test_grid_has_many_levels(self, rng):
        wl = Bfs(BfsParams(num_nodes=1 << 10, graph_kind="grid",
                           frontier_per_wave=256))
        wl.build(VirtualAddressSpace(), rng)
        grid_levels = sum(1 for _ in wl.kernels())
        wl2 = Bfs(BfsParams(num_nodes=1 << 10, graph_kind="random",
                            frontier_per_wave=256))
        wl2.build(VirtualAddressSpace(), rng)
        random_levels = sum(1 for _ in wl2.kernels())
        assert grid_levels > 3 * random_levels
