"""Unit tests for the GPU execution engine."""

import numpy as np

from repro.config import SimulationConfig
from repro.gpu.engine import GpuExecutionEngine
from repro.gpu.timing import TimingModel
from repro.interconnect.pcie import PcieModel
from repro.memory.allocator import VirtualAddressSpace
from repro.stats.collector import StatsCollector
from repro.uvm.driver import UvmDriver

from tests.conftest import StreamWorkload


def make_engine(workload, collector=False):
    cfg = SimulationConfig().with_device_capacity(64 * 2**20)
    vas = VirtualAddressSpace()
    workload.build(vas, np.random.default_rng(0))
    driver = UvmDriver(vas, cfg)
    pcie = PcieModel(cfg.interconnect, cfg.gpu)
    timing = TimingModel(cfg, pcie)
    coll = StatsCollector(vas, histogram=True) if collector else None
    return GpuExecutionEngine(driver, timing, coll), coll


class TestEngine:
    def test_run_advances_clock(self):
        wl = StreamWorkload(size_mb=2, iterations=1)
        engine, _ = make_engine(wl)
        total = engine.run(wl)
        assert total > 0
        assert engine.cycle == total

    def test_totals_accumulate(self):
        wl = StreamWorkload(size_mb=2, iterations=2)
        engine, _ = make_engine(wl)
        engine.run(wl)
        assert engine.total_events.n_accesses > 0
        assert engine.total_timing.total == engine.cycle

    def test_kernel_cycles_sum_to_total(self):
        wl = StreamWorkload(size_mb=2, iterations=3)
        engine, _ = make_engine(wl)
        per_kernel = [engine.run_kernel(k) for k in wl.kernels()]
        assert sum(per_kernel) == engine.cycle

    def test_collector_sees_every_wave(self):
        wl = StreamWorkload(size_mb=2, iterations=1)
        engine, coll = make_engine(wl, collector=True)
        engine.run(wl)
        assert coll.kernels["stream.sweep"].launches == 1
        assert coll.page_reads.sum() + coll.page_writes.sum() == \
            engine.total_events.n_accesses
