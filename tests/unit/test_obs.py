"""Unit tests for the observability layer (events, bus, sinks, metrics,
profiler)."""

import json
import math

import pytest

from repro.obs import (
    AlertFired,
    CounterHalving,
    EventBus,
    Eviction,
    FaultRetry,
    JsonlSink,
    MetricsRegistry,
    MetricsSink,
    MigrationDecision,
    NullSink,
    Observability,
    PhaseProfiler,
    PrefetchExpand,
    RingBufferSink,
    RunMeta,
    SloAttainment,
    SloViolation,
    TelemetryWindow,
    TenantAdmitted,
    TenantArrival,
    TenantComplete,
    TenantSched,
    TenantShed,
    TenantThrottled,
)
from repro.obs.events import EVENT_TYPES, from_dict


def _decision(wave=0, block=1, threshold=8, counter=3, accesses=2,
              migrated=True):
    return MigrationDecision(wave=wave, block=block, threshold=threshold,
                             counter=counter, accesses=accesses,
                             migrated=migrated)


class TestEvents:
    def test_as_dict_tags_kind(self):
        d = _decision().as_dict()
        assert d["event"] == "migration_decision"
        assert d["block"] == 1 and d["migrated"] is True

    def test_round_trip_every_type(self):
        samples = [
            RunMeta(workload="ra", policy="adaptive", seed=0,
                    total_blocks=32, capacity_blocks=16,
                    allocations=(("a", 0, 16), ("b", 16, 32))),
            _decision(),
            Eviction(wave=3, chunk=2, blocks=32, dirty_blocks=4,
                     whole_chunk=True),
            CounterHalving(wave=5, field="counts", halvings=1),
            FaultRetry(wave=6, block=9, failures=2, degraded=False),
            PrefetchExpand(wave=7, chunk=1, fault_block=33, blocks=8),
            TenantArrival(tenant=0, workload="ra", at_us=12.5,
                          footprint_mb=16.0),
            TenantAdmitted(tenant=0, at_us=13.0, queued_us=0.5,
                           live_oversubscription=1.2),
            TenantShed(tenant=1, at_us=20.0, reason="queue_full",
                       live_oversubscription=1.7),
            TenantThrottled(tenant=2, at_us=25.0, rounds=8,
                            thrash_migrations=40),
            TenantComplete(tenant=0, at_us=99.0, waves=64,
                           freed_blocks=256, writeback_blocks=12,
                           p99_wave_latency_us=410.0,
                           thrash_migrations=3, cross_evictions=7),
            TenantSched(tenant=0, at_us=99.0, weight=2.0, deficit=0.25,
                        waves=64, batched_waves=48),
            TelemetryWindow(tenant=0, start_us=0.0, window_us=5000.0,
                            waves=8, accesses=4096, mean_latency_us=88.0,
                            max_latency_us=410.0, bad_waves=1,
                            ewma_latency_us=92.5, thrash_rate=0.75),
            SloViolation(tenant=0, at_us=5000.0, objective="p99_latency",
                         burn_fast=4.0, burn_slow=2.5, value=410.0,
                         target=300.0),
            SloAttainment(tenant=-1, at_us=9000.0, objective="shed_rate",
                          attainment=0.85, target=0.9, met=False),
            AlertFired(name="thrash_pressure", at_us=6000.0, tenant=-1,
                       metric="serve.thrash_per_wave", value=0.9,
                       threshold=0.25, state="firing"),
        ]
        assert {type(s) for s in samples} == set(EVENT_TYPES.values())
        for event in samples:
            # through JSON, as the JsonlSink writes it
            row = json.loads(json.dumps(event.as_dict()))
            assert from_dict(row) == event

    def test_from_dict_ignores_unknown_fields(self):
        row = _decision().as_dict()
        row["extra_field_from_the_future"] = 42
        assert from_dict(row) == _decision()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown event"):
            from_dict({"event": "nosuch"})

    def test_events_are_immutable(self):
        with pytest.raises(AttributeError):
            _decision().block = 7


class TestEventBus:
    def test_disabled_until_first_attach(self):
        bus = EventBus()
        assert not bus.enabled
        bus.attach(NullSink())
        assert bus.enabled

    def test_emit_fans_out_in_order(self):
        bus = EventBus()
        seen = []
        for tag in ("a", "b"):
            class S(NullSink):
                def __init__(self, tag):
                    self.tag = tag

                def write(self, event):
                    seen.append(self.tag)
            bus.attach(S(tag))
        bus.emit(_decision())
        assert seen == ["a", "b"]

    def test_close_closes_sinks(self, tmp_path):
        bus = EventBus()
        sink = JsonlSink(tmp_path / "e.jsonl")
        bus.attach(sink)
        bus.emit(_decision())
        bus.close()
        assert json.loads((tmp_path / "e.jsonl").read_text())["block"] == 1


class TestSinks:
    def test_null_sink_discards(self):
        sink = NullSink()
        sink.write(_decision())  # no state, no error

    def test_ring_buffer_keeps_newest(self):
        sink = RingBufferSink(capacity=3)
        for b in range(5):
            sink.write(_decision(block=b))
        assert sink.total_written == 5
        assert len(sink) == 3
        assert [e.block for e in sink.events] == [2, 3, 4]
        sink.clear()
        assert len(sink) == 0 and sink.total_written == 5

    def test_jsonl_sink_one_object_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        events = [_decision(block=b) for b in range(4)]
        for e in events:
            sink.write(e)
        sink.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [from_dict(r) for r in rows] == events

    def test_jsonl_sink_flush_every_makes_log_tailable(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, flush_every=2)
        events = [_decision(block=b) for b in range(5)]
        for e in events:
            sink.write(e)
        # 4 of 5 events flushed (two batches of 2); sink still open.
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) >= 4
        sink.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [from_dict(r) for r in rows] == events

    def test_jsonl_sink_flush_every_rejects_gzip(self, tmp_path):
        with pytest.raises(ValueError, match="gzip"):
            JsonlSink(tmp_path / "events.jsonl.gz", flush_every=1)

    def test_jsonl_sink_flush_every_rejects_nonpositive(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JsonlSink(tmp_path / "events.jsonl", flush_every=0)

    def test_metrics_sink_rollup(self):
        reg = MetricsRegistry()
        sink = MetricsSink(reg)
        sink.write(_decision(threshold=4, migrated=True))
        sink.write(_decision(threshold=16, migrated=False))
        sink.write(Eviction(wave=1, chunk=0, blocks=32, dirty_blocks=5,
                            whole_chunk=True))
        sink.write(CounterHalving(wave=1, field="counts", halvings=1))
        sink.write(CounterHalving(wave=2, field="roundtrips", halvings=1))
        sink.write(FaultRetry(wave=1, block=3, failures=2, degraded=True))
        sink.write(PrefetchExpand(wave=1, chunk=1, fault_block=40, blocks=8))
        m = reg.as_dict()
        assert m["driver.decisions.migrate"]["value"] == 1
        assert m["driver.decisions.remote"]["value"] == 1
        assert m["driver.threshold"]["count"] == 2
        assert m["driver.evictions"]["value"] == 1
        assert m["driver.evicted_blocks"]["value"] == 32
        assert m["driver.writeback_blocks"]["value"] == 5
        assert m["driver.counter_halvings.counts"]["value"] == 1
        assert m["driver.counter_halvings.roundtrips"]["value"] == 1
        assert m["driver.fault_retries"]["value"] == 2
        assert m["driver.degraded_migrations"]["value"] == 1
        assert m["driver.prefetch_expansions"]["value"] == 1
        assert m["driver.prefetched_blocks"]["value"] == 8


class TestMetrics:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge(self):
        g = MetricsRegistry().gauge("g")
        g.set(0.25)
        assert g.value == 0.25

    def test_histogram_buckets_and_stats(self):
        h = MetricsRegistry().histogram("h")
        for v in (0, 1, 2, 3, 8, 100):
            h.observe(v)
        assert h.count == 6
        assert h.total == 114
        assert h.min == 0 and h.max == 100
        assert h.mean == pytest.approx(19.0)
        d = h.as_dict()
        # bucket 0 holds exactly the zeros; upper edges are powers of two
        assert d["buckets"]["0"] == 1
        assert sum(d["buckets"].values()) == 6

    def test_histogram_bucket_edges(self):
        h = MetricsRegistry().histogram("h")
        for v in (1, 2, 3, 4):
            h.observe(v)
        # layout: bucket 1 is exactly 1, bucket i >= 2 covers
        # (2**(i-2), 2**(i-1)] -- so 2 -> bucket 2, {3, 4} -> bucket 3
        assert h.buckets == {1: 1, 2: 1, 3: 2}
        assert h.bucket_label(3) == "(2, 4]"

    def test_quantile_degenerate_buckets_are_exact(self):
        h = MetricsRegistry().histogram("h")
        for v in (0, 0, 0, 1):
            h.observe(v)
        assert h.quantile(0.5) == 0.0
        assert h.quantile(1.0) == 1.0

    def test_quantile_interpolates_and_clamps(self):
        h = MetricsRegistry().histogram("h")
        for v in (3, 3, 3, 3):
            h.observe(v)  # all in bucket (2, 4]
        # interpolation happens inside the bucket but never escapes the
        # exact observed [min, max] envelope
        for q in (0.0, 0.25, 0.5, 1.0):
            assert h.quantile(q) == 3.0

    def test_quantile_orders_buckets(self):
        h = MetricsRegistry().histogram("h")
        for v in (1,) * 90 + (100,) * 10:
            h.observe(v)
        assert h.quantile(0.5) == 1.0
        assert h.quantile(0.99) > 1.0
        assert h.quantile(0.99) <= 100.0

    def test_quantile_edge_cases(self):
        h = MetricsRegistry().histogram("h")
        assert h.quantile(0.5) is None  # empty
        with pytest.raises(ValueError):
            h.quantile(1.5)
        h.observe(7)
        assert h.quantile(0.0) == 7.0 and h.quantile(1.0) == 7.0
        d = h.as_dict()
        assert d["p50"] == 7.0 and d["p90"] == 7.0 and d["p99"] == 7.0

    def test_series_decimation_bounds_memory(self):
        s = MetricsRegistry().series("s", capacity=8)
        for i in range(1000):
            s.append(float(i), float(i * 2))
        assert len(s.points) <= 8
        xs = [p[0] for p in s.points]
        assert xs == sorted(xs)
        # decimated points are a subset of the appended ones
        assert all(y == 2 * x for x, y in s.points)

    def test_registry_get_or_create_and_type_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("n") is reg.counter("n")
        with pytest.raises(TypeError):
            reg.histogram("n")

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.histogram("b").observe(7)
        path = tmp_path / "m.json"
        reg.write_json(path)
        data = json.loads(path.read_text())
        assert data["a"]["value"] == 3
        assert data["b"]["count"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a").inc(3)
        reg.gauge("b").set(1.5)
        reg.reset()
        assert reg.as_dict() == {}
        # New metrics after a reset start from zero.
        assert reg.counter("a").value == 0

    def test_reset_prefix_is_selective(self):
        reg = MetricsRegistry()
        reg.counter("serve.waves").inc(10)
        reg.counter("serve.tenant.0.x").inc(1)
        reg.counter("driver.evictions").inc(2)
        reg.reset_prefix("serve.")
        snap = reg.as_dict()
        assert "serve.waves" not in snap
        assert "serve.tenant.0.x" not in snap
        assert snap["driver.evictions"]["value"] == 2

    def test_reset_orphans_cached_metric_objects(self):
        """The documented sharp edge: cached handles detach on reset."""
        reg = MetricsRegistry()
        cached = reg.counter("n")
        cached.inc(5)
        reg.reset()
        cached.inc(1)  # mutates the orphan, not the registry
        assert reg.counter("n").value == 0


class TestProfiler:
    def test_span_accumulates(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.span("phase"):
                math.sqrt(2.0)
        report = prof.report()
        assert len(report) == 1
        row = report[0]
        assert row["phase"] == "phase"
        assert row["calls"] == 3 and row["seconds"] >= 0

    def test_wrap_preserves_return_value(self):
        prof = PhaseProfiler()
        timed = prof.wrap("f", lambda a, b: a + b)
        assert timed(2, 3) == 5
        assert prof.phases["f"][1] == 1

    def test_render_lists_heaviest_first(self):
        prof = PhaseProfiler()
        prof.add("light", 0.001)
        prof.add("heavy", 0.5, calls=10)
        text = prof.render()
        assert text.index("heavy") < text.index("light")
        assert prof.as_dict()["heavy"]["calls"] == 10


class TestObservabilityFacade:
    def test_create_wires_everything(self, tmp_path):
        path = tmp_path / "e.jsonl"
        obs = Observability.create(events_path=path, metrics=True,
                                   profile=True)
        assert obs.enabled and obs.bus.enabled
        assert obs.metrics is not None and obs.profiler is not None
        obs.bus.emit(_decision())
        obs.close()
        assert path.exists()
        assert obs.metrics.as_dict()["driver.decisions.migrate"]["value"] == 1

    def test_default_is_disabled(self):
        obs = Observability()
        assert not obs.enabled and not obs.bus.enabled
        assert obs.metrics is None and obs.profiler is None
