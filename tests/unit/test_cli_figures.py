"""Unit tests for the CLI figure command extensions (all / --csv)."""

import pytest

from repro.cli import build_parser, main


class TestFigureCsv:
    def test_csv_output(self, capsys):
        rc = main(["figure", "fig6", "--scale", "tiny", "--csv"])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("figure,series,workload,measured,paper")
        assert "adaptive,ra" in out

    def test_csv_rejected_for_non_series_figures(self):
        with pytest.raises(SystemExit):
            main(["figure", "table1", "--csv"])

    def test_csv_saved_to_file(self, capsys, tmp_path):
        out = tmp_path / "fig6.csv"
        rc = main(["figure", "fig6", "--scale", "tiny", "--csv",
                   "--out", str(out)])
        assert rc == 0
        assert out.read_text().startswith("figure,series,workload")


class TestFigureAll:
    def test_all_accepted_by_parser(self):
        args = build_parser().parse_args(["figure", "all"])
        assert args.id == "all"
