"""Unit tests for the access counter file (Section IV semantics)."""

import numpy as np
import pytest

from repro.uvm.counters import AccessCounterFile


class TestHistoricCounters:
    def test_accumulates(self):
        c = AccessCounterFile(4)
        c.add_accesses(np.array([0, 1]), np.array([3, 5]))
        c.add_accesses(np.array([1]), np.array([2]))
        assert c.counts[0] == 3
        assert c.counts[1] == 7

    def test_duplicate_blocks_in_one_call(self):
        c = AccessCounterFile(4)
        c.add_accesses(np.array([2, 2, 2]), np.array([1, 1, 1]))
        assert c.counts[2] == 3

    def test_halving_preserves_order(self):
        c = AccessCounterFile(3, counter_bits=27, roundtrip_bits=5)
        c.add_accesses(np.array([0, 1]), np.array([100, 200]))
        # Saturate block 2 to trigger a global halving.
        c.add_accesses(np.array([2]), np.array([c.counter_max], dtype=np.uint64))
        assert c.count_halvings >= 1
        assert c.counts[1] > c.counts[0] > 0
        assert c.counts[2] < c.counter_max

    def test_roundtrip_halving(self):
        c = AccessCounterFile(2)
        for _ in range(32):
            c.add_roundtrip(np.array([0]))
        assert c.roundtrip_halvings >= 1
        assert c.roundtrips[0] <= c.roundtrip_max

    def test_roundtrips_accumulate(self):
        c = AccessCounterFile(4)
        c.add_roundtrip(np.array([1, 2]))
        c.add_roundtrip(np.array([2]))
        assert c.roundtrips[1] == 1
        assert c.roundtrips[2] == 2

    def test_chunk_heat(self):
        c = AccessCounterFile(8)
        c.add_accesses(np.array([2, 3]), np.array([4, 6]))
        assert c.chunk_heat(2, 2) == 10
        assert c.chunk_heat(0, 2) == 0


class TestVoltaCounters:
    """Remote-only counters that reset on migration (static schemes)."""

    def test_remote_accumulates(self):
        c = AccessCounterFile(4)
        c.add_remote_accesses(np.array([1]), np.array([5]))
        c.add_remote_accesses(np.array([1]), np.array([2]))
        assert c.volta_counts[1] == 7
        assert c.counts[1] == 0  # independent of historic counters

    def test_reset_on_migration(self):
        c = AccessCounterFile(4)
        c.add_remote_accesses(np.array([0, 1]), np.array([9, 9]))
        c.reset_volta(np.array([0]))
        assert c.volta_counts[0] == 0
        assert c.volta_counts[1] == 9


class TestValidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AccessCounterFile(0)

    def test_rejects_bad_bit_split(self):
        with pytest.raises(ValueError):
            AccessCounterFile(4, counter_bits=30, roundtrip_bits=5)
