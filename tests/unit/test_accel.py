"""Unit tests for the ``repro.accel`` backend subsystem.

Covers backend resolution (including the no-numba fallback warning and
its once-per-process guard), JIT pre-warming, shard-plan geometry,
config validation of the new knobs, and how the backend is surfaced in
run metadata, checkpoint identity and the regression fingerprint.
"""

import time

import numpy as np
import pytest

import repro.accel as accel
from repro.accel import Backend, make_shard_plan, resolve_backend
from repro.analysis.checkpoint import cell_key
from repro.analysis.parallel import GridCell
from repro.config import (
    KNOWN_BACKENDS,
    MigrationPolicy,
    SimulationConfig,
    default_backend,
)
from repro.obs import events
from repro.obs.inspect import summarize
from repro.obs.regress import fingerprint
from repro.sim.simulator import Simulator
from repro.workloads import make_workload

from tests.conftest import make_vas


@pytest.fixture
def fresh_warning_state(monkeypatch):
    """Reset the once-per-process-tree fallback-warning guard."""
    monkeypatch.setattr(accel, "_warned", False)
    monkeypatch.delenv("_REPRO_ACCEL_WARNED", raising=False)
    monkeypatch.setattr(accel, "FORCE_INTERPRETED", False)


# ---------------------------------------------------------------------------
# backend resolution
# ---------------------------------------------------------------------------

def test_python_backend_resolves_to_reference_kernels():
    b = resolve_backend("python")
    assert b == Backend("python", "python", accel.kernels)


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        resolve_backend("fortran")


def test_numba_request_without_numba_warns_once(capsys,
                                                fresh_warning_state):
    if accel.HAS_NUMBA:
        pytest.skip("numba installed: fallback path unreachable")
    b = resolve_backend("numba")
    assert b.name == "python" and b.requested == "numba"
    assert b.kernels is accel.kernels
    err = capsys.readouterr().err
    assert err.count("falling back to the pure-python backend") == 1
    # Second resolution (and any child process via the env guard) is
    # silent: the warning fires once per process tree.
    resolve_backend("numba")
    assert capsys.readouterr().err == ""


def test_forced_interpretation_resolves_numba(monkeypatch):
    monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)
    b = resolve_backend("numba")
    assert b.name == "numba" and b.kernels is accel.jit


def test_warm_jit_idempotent(monkeypatch):
    monkeypatch.setattr(accel, "FORCE_INTERPRETED", True)
    monkeypatch.setattr(accel, "_warmed", False)
    accel.warm_jit()
    accel.warm_jit()  # second call is a no-op, not a recompile


def test_first_and_second_cell_walltimes_comparable():
    """Pre-warming keeps first-cell latency in family with the second.

    With a JIT backend the first driver construction triggers
    ``warm_jit``; compilation must not land inside the first cell's
    simulation.  The bound is deliberately loose -- it only catches a
    first cell paying a multi-second compile the second one skips.
    """
    def cell_seconds() -> float:
        t0 = time.perf_counter()
        cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.ADAPTIVE)
        Simulator(cfg).run(make_workload("ra", "tiny"),
                           oversubscription=1.25)
        return time.perf_counter() - t0

    first, second = cell_seconds(), cell_seconds()
    assert first < 20 * second + 0.5


# ---------------------------------------------------------------------------
# shard plans
# ---------------------------------------------------------------------------

def test_shard_plan_boundaries_are_chunk_aligned():
    vas = make_vas(8, 4, 16)
    firsts = np.array([c.first_block for c in vas.chunks], dtype=np.int64)
    plan = make_shard_plan(firsts, vas.total_blocks, 4)
    assert plan.n_shards >= 2
    assert np.all(np.isin(plan.boundaries, firsts))
    assert np.all(np.diff(plan.boundaries) > 0)


def test_shard_plan_split_covers_sorted_array_exactly():
    vas = make_vas(8, 4, 16)
    firsts = np.array([c.first_block for c in vas.chunks], dtype=np.int64)
    plan = make_shard_plan(firsts, vas.total_blocks, 4)
    rng = np.random.default_rng(0)
    blocks = np.sort(rng.integers(0, vas.total_blocks, size=300))
    slices = plan.split(blocks)
    assert len(slices) == plan.n_shards
    assert slices[0][0] == 0 and slices[-1][1] == blocks.size
    rebuilt = np.concatenate([blocks[lo:hi] for lo, hi in slices])
    assert np.array_equal(rebuilt, blocks)
    for i, (lo, hi) in enumerate(slices):  # each slice inside its range
        if lo == hi:
            continue
        if i > 0:
            assert blocks[lo] >= plan.boundaries[i - 1]
        if i < plan.n_shards - 1:
            assert blocks[hi - 1] < plan.boundaries[i]


def test_shard_plan_degenerate_cases():
    vas = make_vas(4)
    firsts = np.array([c.first_block for c in vas.chunks], dtype=np.int64)
    single = make_shard_plan(firsts, vas.total_blocks, 1)
    assert single.n_shards == 1 and single.boundaries.size == 0
    # More shards than chunks: collapses instead of emitting empties.
    many = make_shard_plan(firsts, vas.total_blocks, 64)
    assert many.n_shards <= firsts.size
    with pytest.raises(ValueError, match=">= 1"):
        make_shard_plan(firsts, vas.total_blocks, 0)


def test_driver_exposes_backend_and_shards():
    cfg = SimulationConfig(backend="python", shards=4).with_policy(
        MigrationPolicy.ADAPTIVE)
    from repro.uvm.driver import UvmDriver
    drv = UvmDriver(make_vas(8, 4, 16), cfg)
    assert drv.backend_name == "python"
    assert drv.shards > 1


# ---------------------------------------------------------------------------
# config plumbing
# ---------------------------------------------------------------------------

def test_config_rejects_unknown_backend_and_bad_shards():
    with pytest.raises(ValueError, match="unknown backend"):
        SimulationConfig(backend="fortran").validate()
    with pytest.raises(ValueError, match="shards"):
        SimulationConfig(shards=0).validate()
    SimulationConfig(backend="numba", shards=4).validate()


def test_default_backend_reads_environment(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert default_backend() == "python"
    monkeypatch.setenv("REPRO_BACKEND", "NUMBA")
    assert default_backend() == "numba"
    assert SimulationConfig().backend == "numba"
    assert "numba" in KNOWN_BACKENDS


# ---------------------------------------------------------------------------
# metadata surfaces: run archive, checkpoint identity, regression gate
# ---------------------------------------------------------------------------

def test_run_meta_records_backend_and_shards_with_defaults():
    meta = events.RunMeta(workload="ra", policy="adaptive", seed=1,
                          total_blocks=8, capacity_blocks=4,
                          allocations=(), backend="numba", shards=4)
    row = meta.as_dict()
    back = events.from_dict(row)
    assert back.backend == "numba" and back.shards == 4
    # Logs archived before the fields existed decode to the defaults.
    row.pop("backend")
    row.pop("shards")
    old = events.from_dict(row)
    assert old.backend == "python" and old.shards == 1


def test_inspect_summary_names_backend(tmp_path):
    from repro.obs import Observability
    log = tmp_path / "events.jsonl"
    obs = Observability.create(events_path=str(log))
    cfg = SimulationConfig(seed=2, backend="python", shards=2).with_policy(
        MigrationPolicy.ADAPTIVE)
    Simulator(cfg).run(make_workload("ra", "tiny"),
                       oversubscription=1.25, obs=obs)
    obs.close()
    from repro.obs.inspect import render_summary
    text = render_summary(summarize(str(log)))
    assert "backend python" in text
    assert "2 shards" in text


def test_cell_key_ignores_backend_and_shards():
    base = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
    hinted = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny",
                      backend="numba", shards=4)
    assert cell_key(hinted) == cell_key(base)


def test_fingerprint_tracks_active_backend():
    report = {"host": {"cpu": "x", "cores": 8},
              "python": "3.11", "numpy": "2.0",
              "backend": {"requested": "numba", "active": "python",
                          "numba": None}}
    legacy = {"host": {"cpu": "x", "cores": 8},
              "python": "3.11", "numpy": "2.0"}
    assert fingerprint(report)[-1] == "python"
    assert fingerprint(legacy)[-1] == "python"
    report["backend"]["active"] = "numba"
    assert fingerprint(report)[-1] == "numba"
