"""Unit tests for the serving layer's admission controller."""

import pytest

from repro.serve import AdmissionController


def make(capacity=100, admit=1.5, shed=2.5, depth=2):
    return AdmissionController(capacity, admit, shed, depth)


class TestOffer:
    def test_admit_under_watermark(self):
        c = make()
        d = c.offer(0, 120, at_us=0.0)
        assert (d.action, d.reason) == ("admit", "")
        assert c.live_blocks == 120
        assert c.oversubscription == pytest.approx(1.2)

    def test_admit_exactly_at_watermark(self):
        c = make()
        assert c.offer(0, 150, 0.0).action == "admit"

    def test_queue_past_admit_watermark(self):
        c = make()
        c.offer(0, 140, 0.0)
        d = c.offer(1, 40, 1.0)
        assert d.action == "queue"
        assert list(c.queue) == [(1, 40, 1.0)]
        # Queued footprint is not live.
        assert c.live_blocks == 140

    def test_shed_past_shed_watermark(self):
        c = make()
        c.offer(0, 140, 0.0)
        d = c.offer(1, 200, 1.0)
        assert (d.action, d.reason) == ("shed", "watermark")

    def test_shed_on_full_queue(self):
        c = make(depth=1)
        c.offer(0, 140, 0.0)
        c.offer(1, 40, 1.0)
        d = c.offer(2, 40, 2.0)
        assert (d.action, d.reason) == ("shed", "queue_full")

    def test_never_admit_past_nonempty_queue(self):
        """A tiny arrival must not overtake a queued predecessor."""
        c = make()
        c.offer(0, 140, 0.0)
        c.offer(1, 60, 1.0)   # queued
        d = c.offer(2, 1, 2.0)  # would fit, but FIFO order wins
        assert d.action == "queue"

    def test_counters_track_decisions(self):
        c = make(depth=1)
        c.offer(0, 140, 0.0)
        c.offer(1, 40, 1.0)
        c.offer(2, 40, 2.0)
        assert (c.admits, c.queued, c.sheds) == (1, 1, 1)
        assert [d.action for d in c.decisions] == ["admit", "queue", "shed"]


class TestQueueDrain:
    def test_pop_admits_in_fifo_order(self):
        c = make(admit=1.0)
        c.offer(0, 90, 0.0)
        c.offer(1, 50, 1.0)
        c.offer(2, 10, 2.0)
        assert c.pop_admittable() is None  # head does not fit yet
        c.release(90)
        assert c.pop_admittable() == (1, 1.0)
        assert c.pop_admittable() == (2, 2.0)
        assert c.pop_admittable() is None

    def test_force_admit_marks_idle_reason(self):
        c = make(admit=1.0)
        c.offer(0, 100, 0.0)
        c.offer(1, 120, 1.0)  # queued, never fits under the watermark
        c.release(100)
        assert c.pop_admittable() is None
        assert c.pop_admittable(force=True) == (1, 1.0)
        assert c.decisions[-1].reason == "idle"

    def test_release_over_release_rejected(self):
        c = make()
        c.offer(0, 100, 0.0)
        with pytest.raises(ValueError):
            c.release(101)


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            make(capacity=0)
        with pytest.raises(ValueError):
            make(admit=2.0, shed=1.0)
        with pytest.raises(ValueError):
            make(depth=0)


class TestPurity:
    def test_decisions_pure_function_of_call_sequence(self):
        """Same (capacity, watermarks, offers/releases) -> same verdicts."""
        calls = [("offer", 0, 140, 0.0), ("offer", 1, 40, 1.0),
                 ("release", 140), ("offer", 2, 200, 2.0),
                 ("offer", 3, 40, 3.0)]

        def run():
            c = make(depth=1)
            for call in calls:
                if call[0] == "offer":
                    c.offer(*call[1:])
                    while c.pop_admittable():
                        pass
                else:
                    c.release(call[1])
            return [(d.tenant, d.action, d.reason,
                     d.live_oversubscription) for d in c.decisions]

        assert run() == run()
