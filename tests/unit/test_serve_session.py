"""Unit tests for the multi-tenant serving session (``repro serve``)."""

import pytest

from repro.config import ServeConfig
from repro.obs import Observability
from repro.obs.events import (
    RunMeta,
    TenantAdmitted,
    TenantArrival,
    TenantComplete,
    TenantShed,
    TenantThrottled,
)
from repro.obs.inspect import render_summary, summarize
from repro.obs.sinks import RingBufferSink
from repro.serve import ServeSession


def run(**kw):
    return ServeSession(ServeConfig(**{"tenants": 4, "seed": 0, **kw})).run()


#: Overload scenario: churn past 1.5x aggregate oversubscription with a
#: short queue, tuned so every degradation stage engages.
OVERLOAD = dict(tenants=10, seed=1, arrival_rate=2000.0, queue_depth=2,
                throttle_watermark=1.0, admit_watermark=1.8,
                shed_watermark=2.0)


class TestLightLoad:
    def test_everyone_completes(self):
        r = run()
        assert r.arrivals == 4
        assert r.completed == 4
        assert r.shed == 0
        assert all(t.complete_us is not None for t in r.tenants)
        assert r.duration_us > 0
        assert r.total_waves > 0

    def test_records_consistent_with_counters(self):
        r = run()
        assert len(r.tenants) == r.arrivals
        assert sum(1 for t in r.tenants if t.shed) == r.shed
        assert sum(t.waves for t in r.tenants) == r.total_waves

    def test_teardown_frees_the_device(self):
        s = ServeSession(ServeConfig(tenants=4, seed=0))
        s.run()
        assert s._driver.device.used_blocks == 0
        assert s._controller.live_blocks == 0

    def test_latency_quantiles_ordered(self):
        r = run()
        for t in r.tenants:
            assert 0 < t.p50_wave_latency_us <= t.p99_wave_latency_us

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            run(duration_ms=1e-9)


class TestOverload:
    def test_degrades_in_watermark_order(self):
        """Acceptance: throttle -> queue -> shed, never the reverse."""
        r = run(**OVERLOAD)
        assert r.peak_live_oversubscription >= 1.5
        assert r.shed > 0 and r.queued > 0 and r.throttle_events > 0
        assert r.first_throttle_us is not None
        assert r.first_throttle_us <= r.first_queue_us <= r.first_shed_us

    def test_shed_reasons_are_deterministic_strings(self):
        r = run(**OVERLOAD)
        reasons = {t.shed_reason for t in r.tenants if t.shed}
        assert reasons <= {"watermark", "queue_full"}

    def test_shed_tenants_never_run(self):
        r = run(**OVERLOAD)
        for t in r.tenants:
            if t.shed:
                assert t.waves == 0
                assert t.admitted_us is None
                assert t.complete_us is None

    def test_admitted_tenants_complete(self):
        """No livelock: everything admitted eventually completes."""
        r = run(**OVERLOAD)
        assert r.completed == r.admitted
        assert r.admitted + r.shed == r.arrivals

    def test_decision_order_is_recorded(self):
        r = run(**OVERLOAD)
        assert len(r.decisions) >= r.arrivals
        actions = {d[1] for d in r.decisions}
        assert actions == {"admit", "queue", "shed"}


class TestObservability:
    def _run_with_ring(self, **kw):
        obs = Observability(metrics=None)
        ring = RingBufferSink(65536)
        obs.bus.attach(ring)
        cfg = ServeConfig(**{"tenants": 4, "seed": 0, **kw})
        result = ServeSession(cfg, obs=obs).run()
        return result, list(ring)

    def test_lifecycle_events_emitted(self):
        r, events = self._run_with_ring()
        kinds = {type(e) for e in events}
        assert {RunMeta, TenantArrival, TenantAdmitted,
                TenantComplete} <= kinds
        arrivals = [e for e in events if isinstance(e, TenantArrival)]
        assert len(arrivals) == r.arrivals

    def test_run_meta_names_tenant_allocations(self):
        _, events = self._run_with_ring()
        meta = next(e for e in events if isinstance(e, RunMeta))
        assert meta.workload.startswith("serve:")
        assert all(name.startswith("t") and "/" in name
                   for name, _, _ in meta.allocations)

    def test_shed_and_throttle_events_under_overload(self):
        r, events = self._run_with_ring(**OVERLOAD)
        sheds = [e for e in events if isinstance(e, TenantShed)]
        throttles = [e for e in events if isinstance(e, TenantThrottled)]
        assert len(sheds) == r.shed
        assert len(throttles) == r.throttle_events

    def test_inspect_summarizes_tenants(self):
        r, events = self._run_with_ring()
        s = summarize(events)
        assert len(s.tenants) == r.arrivals
        for rec in r.tenants:
            row = s.tenants[rec.tenant]
            assert row.workload == rec.workload
            assert row.completed == (rec.complete_us is not None)
            assert row.waves == rec.waves
        text = render_summary(s)
        assert "tenants (serve log)" in text
        assert "interference" in text

    def test_inspect_tenant_states(self):
        _, events = self._run_with_ring(**OVERLOAD)
        s = summarize(events)
        states = {row.state for row in s.tenants.values()}
        assert "complete" in states
        assert any(st.startswith("shed:") for st in states)

    def test_metrics_gauges_set(self):
        obs = Observability.create(metrics=True)
        r = ServeSession(ServeConfig(tenants=4, seed=0), obs=obs).run()
        snap = obs.metrics.as_dict()
        assert snap["serve.accesses_per_second"]["value"] == pytest.approx(
            r.accesses_per_second)
        assert snap["serve.p99_wave_latency_us"]["value"] == pytest.approx(
            r.p99_wave_latency_us)
        assert snap["serve.shed_rate"]["value"] == pytest.approx(r.shed_rate)
        assert snap["serve.waves"]["value"] == r.total_waves


class TestLiveTelemetry:
    SLO = None  # set lazily to keep the import local to the class

    def _slo(self):
        from repro.obs.live import SloConfig
        return SloConfig(p99_latency_us=300.0, latency_attainment=0.95,
                         max_shed_rate=0.1)

    def test_back_to_back_serves_reset_serve_metrics(self):
        """Satellite contract: one registry, two serves, no stale rows."""
        obs = Observability.create(metrics=True)
        ServeSession(ServeConfig(**OVERLOAD), obs=obs,
                     slo=self._slo()).run()
        first = {k: v for k, v in obs.metrics.as_dict().items()
                 if k.startswith("serve.")}
        assert any(k.startswith("serve.tenant.") for k in first)
        ServeSession(ServeConfig(tenants=2, seed=3), obs=obs).run()
        second = {k: v for k, v in obs.metrics.as_dict().items()
                  if k.startswith("serve.")}
        # The second (2-tenant, SLO-free) serve re-creates its own
        # rows but must not inherit the overload run's: no tenant ids
        # beyond its own two, no SLO gauges, no alert counters.
        assert not any(k.startswith(f"serve.tenant.{tid}.")
                       for k in second for tid in range(2, 10))
        assert not any(k.endswith(".slo_attainment") for k in second)
        assert not any(k.startswith("serve.alert.") for k in second)
        assert second["serve.alerts_fired"]["value"] == 0
        assert second["serve.waves"]["value"] > 0

    def test_result_rolls_up_violations_and_alerts(self):
        obs = Observability(metrics=None)
        ring = RingBufferSink(65536)
        obs.bus.attach(ring)
        r = ServeSession(ServeConfig(**OVERLOAD), obs=obs,
                         slo=self._slo()).run()
        events = list(ring)
        violations = [e for e in events if e.kind == "slo_violation"]
        firing = [e for e in events
                  if e.kind == "alert_fired" and e.state == "firing"]
        assert r.slo_violations == len(violations) > 0
        assert r.alerts_fired == len(firing) > 0
        windows = [e for e in events if e.kind == "telemetry_window"]
        assert windows and all(w.window_us == 5000.0 for w in windows)

    def test_invalid_slo_rejected_eagerly(self):
        from repro.obs.live import SloConfig
        with pytest.raises(ValueError, match="invalid SLO config"):
            ServeSession(ServeConfig(tenants=2, seed=0),
                         slo=SloConfig(p99_latency_us=-5.0))

    def test_slo_without_obs_still_counts(self):
        """The SLO engine works with no sinks attached at all."""
        r = ServeSession(ServeConfig(**OVERLOAD), slo=self._slo()).run()
        assert r.slo_violations > 0

    def test_no_telemetry_without_opt_in(self):
        r = run(**OVERLOAD)
        assert r.slo_violations == 0 and r.alerts_fired == 0


class TestResultEncoding:
    def test_as_dict_is_json_safe(self):
        import json
        d = run().as_dict()
        json.dumps(d)  # must not raise
        assert d["config"]["tenants"] == 4
        assert len(d["tenants"]) == d["arrivals"]
        assert d["slo_violations"] == 0 and d["alerts_fired"] == 0

    def test_driver_totals_included(self):
        d = run().as_dict()
        assert "thrash_migrations" in d["driver_totals"]
        assert "evicted_blocks" in d["driver_totals"]
