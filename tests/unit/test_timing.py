"""Unit tests for the PCIe and wave timing models."""

import pytest

from repro.config import GpuConfig, InterconnectConfig, SimulationConfig
from repro.gpu.timing import TimingModel, WaveTiming
from repro.interconnect.pcie import PcieModel
from repro.memory.layout import BASIC_BLOCK_SIZE
from repro.uvm.driver import WaveOutcome


@pytest.fixture
def pcie():
    return PcieModel(InterconnectConfig(), GpuConfig())


@pytest.fixture
def timing(pcie):
    return TimingModel(SimulationConfig(), pcie)


class TestPcieModel:
    def test_bytes_per_cycle(self, pcie):
        assert pcie.bytes_per_cycle == pytest.approx(16e9 / 1481e6)

    def test_fault_batch_cycles_is_45us(self, pcie):
        assert pcie.fault_batch_cycles == round(45 * 1481)

    def test_migration_cost_scales_with_blocks(self, pcie):
        one = pcie.migration_cycles(1)
        ten = pcie.migration_cycles(10)
        assert ten == pytest.approx(10 * one)
        assert one > BASIC_BLOCK_SIZE / pcie.bytes_per_cycle

    def test_zero_transfers_free(self, pcie):
        assert pcie.migration_cycles(0) == 0.0
        assert pcie.writeback_cycles(0) == 0.0
        assert pcie.remote_cycles(0) == 0.0
        assert pcie.fault_handling_cycles(0) == 0.0

    def test_fault_batching(self, pcie):
        batch = pcie.config.fault_batch_size
        assert pcie.fault_handling_cycles(1) == pcie.fault_batch_cycles
        assert pcie.fault_handling_cycles(batch) == pcie.fault_batch_cycles
        assert pcie.fault_handling_cycles(batch + 1) == \
            2 * pcie.fault_batch_cycles

    def test_traffic_accounting(self, pcie):
        pcie.migration_cycles(2)
        pcie.writeback_cycles(1)
        pcie.remote_cycles(5)
        assert pcie.h2d_bytes == 2 * BASIC_BLOCK_SIZE
        assert pcie.d2h_bytes == BASIC_BLOCK_SIZE
        assert pcie.remote_bytes == 5 * pcie.config.remote_transaction_bytes

    def test_remote_access_slower_than_local_but_much_cheaper_than_block(
            self, pcie):
        assert pcie.remote_access_cycles > 1
        assert pcie.remote_access_cycles < pcie.block_transfer_cycles


class TestTimingModel:
    def test_pure_compute_wave(self, timing):
        out = WaveOutcome(n_accesses=100, n_local=100)
        t = timing.wave_cycles(out, compute_cycles=5000)
        assert t.compute == 5000
        assert t.total == pytest.approx(max(5000, t.local))

    def test_compute_overlaps_local_traffic(self, timing):
        out = WaveOutcome(n_accesses=100, n_local=100)
        t = timing.wave_cycles(out, compute_cycles=1.0)
        assert t.total == pytest.approx(t.local)

    def test_fault_serializes(self, timing):
        quiet = timing.wave_cycles(WaveOutcome(n_accesses=10, n_local=10),
                                   compute_cycles=100)
        faulty = timing.wave_cycles(
            WaveOutcome(n_accesses=10, n_local=9, fault_migrations=1,
                        migrated_blocks=1), compute_cycles=100)
        assert faulty.total > quiet.total + timing.pcie.fault_batch_cycles

    def test_writeback_adds_cost(self, timing):
        base = WaveOutcome(n_accesses=1, n_local=0, fault_migrations=1,
                           migrated_blocks=1)
        dirty = WaveOutcome(n_accesses=1, n_local=0, fault_migrations=1,
                            migrated_blocks=1, writeback_blocks=2)
        assert timing.wave_cycles(dirty).total > timing.wave_cycles(base).total

    def test_default_compute_estimate(self, timing):
        out = WaveOutcome(n_accesses=1000, n_local=1000)
        t = timing.wave_cycles(out)
        tc = timing.config.timing
        assert t.compute == pytest.approx(
            1000 * tc.compute_cycles_per_access + tc.wave_overhead_cycles)

    def test_wave_total_cycles_matches_breakdown(self, timing):
        # The scalar fast path must stay in lockstep with wave_cycles,
        # including PCIe traffic accounting side effects.
        outcomes = [
            WaveOutcome(n_accesses=100, n_local=100),
            WaveOutcome(n_accesses=50, n_local=20, n_remote=30,
                        mapping_faults=4),
            WaveOutcome(n_accesses=10, n_local=9, fault_migrations=1,
                        migrated_blocks=1, writeback_blocks=2),
            WaveOutcome(n_accesses=8, n_local=0, n_remote=8,
                        retried_transfers=2, retry_backoff_us=3.5),
        ]
        for out in outcomes:
            for cc in (None, 123.0):
                pcie_a = PcieModel(InterconnectConfig(), GpuConfig())
                pcie_b = PcieModel(InterconnectConfig(), GpuConfig())
                full = TimingModel(SimulationConfig(), pcie_a)
                fast = TimingModel(SimulationConfig(), pcie_b)
                assert (fast.wave_total_cycles(out, cc)
                        == full.wave_cycles(out, cc).total)
                assert pcie_b.h2d_bytes == pcie_a.h2d_bytes
                assert pcie_b.d2h_bytes == pcie_a.d2h_bytes
                assert pcie_b.remote_bytes == pcie_a.remote_bytes

    def test_merge_accumulates(self):
        a = WaveTiming(compute=1, local=2, total=3)
        b = WaveTiming(compute=10, local=20, total=30)
        a.merge(b)
        assert a.compute == 11 and a.local == 22 and a.total == 33


class TestOutcomeMerge:
    def test_merge(self):
        a = WaveOutcome(n_accesses=1, n_local=1)
        b = WaveOutcome(n_accesses=2, fault_migrations=3)
        a.merge(b)
        assert a.n_accesses == 3
        assert a.fault_migrations == 3

    def test_derived_properties(self):
        o = WaveOutcome(fault_migrations=2, mapping_faults=3,
                        migrated_blocks=2, prefetched_blocks=5)
        assert o.fault_events == 5
        assert o.h2d_blocks == 7
