"""CLI surface of the scenario-config subsystem.

``run --config`` / ``sweep --config`` / ``sweep --config-dir`` /
``serve --config`` / ``config validate`` / ``config show``.
"""

import json

import pytest

from repro.cli import main
from repro.obs.store import RunStore

yaml = pytest.importorskip("yaml")


def write(path, text):
    path.write_text(text)
    return str(path)


@pytest.fixture
def run_cfg(tmp_path):
    return write(tmp_path / "one.yaml",
                 "workload: ra\nscale: tiny\noversubscription: 1.25\n")


@pytest.fixture
def sweep_cfg(tmp_path):
    return write(tmp_path / "grid.yaml", """\
mode: sweep
workload: ra
scale: tiny
sweep:
  policy.variant: [disabled, adaptive]
""")


class TestRunConfig:
    def test_run_config_executes(self, run_cfg, capsys):
        assert main(["run", "--config", run_cfg]) == 0
        out = capsys.readouterr().out
        assert "cycle breakdown" in out

    def test_run_config_honours_flag_overlays(self, run_cfg, capsys):
        assert main(["run", "--config", run_cfg, "--histogram"]) == 0
        assert "access histogram" in capsys.readouterr().out

    def test_workload_plus_config_rejected(self, run_cfg):
        with pytest.raises(SystemExit, match="not both"):
            main(["run", "ra", "--config", run_cfg])

    def test_neither_workload_nor_config_rejected(self):
        with pytest.raises(SystemExit, match="workload name or --config"):
            main(["run"])

    def test_invalid_config_fails_cleanly(self, tmp_path):
        bad = write(tmp_path / "bad.yaml", "workload: nosuch\n")
        with pytest.raises(SystemExit, match="nosuch"):
            main(["run", "--config", bad])

    def test_swept_config_runs_as_batch(self, sweep_cfg, capsys):
        assert main(["run", "--config", sweep_cfg]) == 0
        out = capsys.readouterr().out
        assert "grid[policy.variant=disabled]" in out
        assert "grid[policy.variant=adaptive]" in out

    def test_run_config_archives_scenario(self, run_cfg, tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["run", "--config", run_cfg, "--archive",
                     "--runs", str(runs)]) == 0
        (manifest,) = RunStore(runs).list()
        assert manifest.scenario == "one"
        assert manifest.config["scenario"]["workload"] == "ra"


class TestSweepConfig:
    def test_sweep_config_renders_table(self, sweep_cfg, capsys):
        assert main(["sweep", "--config", sweep_cfg]) == 0
        out = capsys.readouterr().out
        assert "scenario grid" in out
        assert "runtime (ms)" in out

    def test_config_dir_runs_every_scenario(self, tmp_path, capsys):
        write(tmp_path / "_base.yaml", "scale: tiny\nworkload: ra\n")
        write(tmp_path / "a.yaml", "inherits: _base\n")
        write(tmp_path / "b.yaml",
              "inherits: _base\nmode: multigpu\n"
              "multigpu: {gpus: 2, throttle: 0.75}\n")
        assert main(["sweep", "--config-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "scenario a" in out
        assert "scenario b" in out
        assert "makespan" in out

    def test_config_and_config_dir_mutually_exclusive(self, sweep_cfg,
                                                      tmp_path):
        with pytest.raises(SystemExit, match="not both"):
            main(["sweep", "--config", sweep_cfg,
                  "--config-dir", str(tmp_path)])

    def test_workload_plus_config_rejected(self, sweep_cfg):
        with pytest.raises(SystemExit, match="not both"):
            main(["sweep", "ra", "--config", sweep_cfg])

    def test_sweep_config_archives_resolved_variants(self, sweep_cfg,
                                                     tmp_path, capsys):
        runs = tmp_path / "runs"
        assert main(["sweep", "--config", sweep_cfg, "--archive",
                     "--runs", str(runs)]) == 0
        manifests = RunStore(runs).list()
        assert len(manifests) == 2
        variants = set()
        for manifest in manifests:
            assert manifest.scenario == "grid"
            variants.add(manifest.config["scenario"]["policy"]["variant"])
        assert variants == {"disabled", "adaptive"}


class TestServeConfig:
    def test_serve_config_executes(self, tmp_path, capsys):
        cfg = write(tmp_path / "s.yaml", """\
mode: serve
scale: tiny
serve:
  tenants: 2
  workload_mix: [ra]
  capacity_mb: 16
""")
        assert main(["serve", "--config", cfg]) == 0
        assert "tenants" in capsys.readouterr().out

    def test_non_serve_config_redirected(self, run_cfg):
        with pytest.raises(SystemExit, match="mode"):
            main(["serve", "--config", run_cfg])


class TestConfigCommand:
    def test_validate_ok(self, run_cfg, capsys):
        assert main(["config", "validate", run_cfg]) == 0
        assert "ok" in capsys.readouterr().out

    def test_validate_reports_failures(self, tmp_path, capsys):
        bad = write(tmp_path / "bad.yaml", "workload: ra\nbogus: 1\n")
        assert main(["config", "validate", bad]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_validate_directory(self, tmp_path, capsys):
        write(tmp_path / "_base.yaml", "scale: tiny\n")
        write(tmp_path / "a.yaml", "inherits: _base\nworkload: ra\n")
        assert main(["config", "validate", str(tmp_path)]) == 0

    def test_show_prints_resolved_json(self, tmp_path, capsys):
        write(tmp_path / "_base.yaml", "scale: tiny\n")
        cfg = write(tmp_path / "a.yaml", "inherits: _base\nworkload: ra\n")
        assert main(["config", "show", cfg]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("{"):])
        assert payload["scale"] == "tiny"
        assert "inherits" not in payload

    def test_shipped_library_validates(self, capsys):
        assert main(["config", "validate", "configs", "configs/smoke",
                     "configs/section8_throttle"]) == 0
