"""Unit tests for the perf-regression gate (repro.obs.regress)."""

import json

import pytest

from repro.obs.regress import (
    GATED_METRICS,
    append_history,
    check_regression,
    fingerprint,
    load_history,
    lookup,
)


def _report(aps=1000.0, cpu=1.0, speedup=1.5, scale="small",
            machine="x86_64", cpus=4) -> dict:
    return {
        "schema_version": 2,
        "host": {"python": "3.11", "machine": machine, "cpus": cpus},
        "throughput": {"scale": scale, "accesses_per_second": aps},
        "sweep_grid": {"serial_cpu_seconds": cpu},
        "batched_vs_scalar": {"drain_speedup": speedup},
    }


class TestHelpers:
    def test_lookup_dotted_paths(self):
        r = _report(aps=42.0)
        assert lookup(r, "throughput.accesses_per_second") == 42.0
        assert lookup(r, "throughput.nope") is None
        assert lookup(r, "nope.deeper") is None

    def test_fingerprint_separates_hosts_and_scales(self):
        assert fingerprint(_report()) == fingerprint(_report())
        assert fingerprint(_report(scale="tiny")) != fingerprint(_report())
        assert fingerprint(_report(cpus=8)) != fingerprint(_report())

    def test_history_round_trip_skips_torn_lines(self, tmp_path):
        path = tmp_path / "h.jsonl"
        append_history(path, _report(aps=1.0))
        append_history(path, _report(aps=2.0))
        with open(path, "a") as fh:
            fh.write('{"torn": ')  # simulated crash mid-write
        entries = load_history(path)
        assert [lookup(e, "throughput.accesses_per_second")
                for e in entries] == [1.0, 2.0]


class TestCheckRegression:
    def test_tolerance_boundary(self):
        history = [_report(aps=1000.0)]
        just_inside = check_regression(
            history, candidate=_report(aps=801.0), tolerance=0.20)
        just_outside = check_regression(
            history, candidate=_report(aps=799.0), tolerance=0.20)
        assert just_inside.ok
        assert not just_outside.ok

    def test_twenty_percent_throughput_drop_fails(self):
        history = [_report(aps=1000.0) for _ in range(3)]
        report = check_regression(history, candidate=_report(aps=780.0))
        assert not report.ok
        assert [f.metric for f in report.regressions] == \
            ["throughput.accesses_per_second"]
        assert "FAIL" in report.render()

    def test_direction_awareness(self):
        history = [_report(cpu=1.0)]
        slower = check_regression(history, candidate=_report(cpu=1.5))
        faster = check_regression(history, candidate=_report(cpu=0.5))
        assert not slower.ok
        assert faster.ok
        by_name = {f.metric: f for f in faster.findings}
        assert by_name["sweep_grid.serial_cpu_seconds"].status == "improved"

    def test_median_baseline_shrugs_off_one_outlier(self):
        history = [_report(aps=1000.0), _report(aps=1000.0),
                   _report(aps=10.0), _report(aps=1000.0)]
        report = check_regression(history, candidate=_report(aps=950.0))
        assert report.ok

    def test_window_bounds_the_baseline(self):
        history = [_report(aps=10_000.0)] + \
            [_report(aps=1000.0) for _ in range(5)]
        report = check_regression(history, candidate=_report(aps=950.0),
                                  window=5)
        assert report.ok and report.baseline_points == 5

    def test_newest_entry_is_the_default_candidate(self):
        history = [_report(aps=1000.0), _report(aps=700.0)]
        assert not check_regression(history).ok
        # the candidate itself must not sit in its own baseline
        assert check_regression([_report(aps=700.0)]).ok

    def test_incomparable_history_is_skipped(self):
        history = [_report(aps=1000.0, scale="small")]
        report = check_regression(history,
                                  candidate=_report(aps=1.0, scale="tiny"))
        assert report.ok
        assert all(f.status == "skipped" for f in report.findings)
        assert "skipped" in report.render()

    def test_empty_history_passes_with_candidate(self):
        report = check_regression([], candidate=_report())
        assert report.ok and report.baseline_points == 0

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="empty history"):
            check_regression([])
        with pytest.raises(ValueError, match="window"):
            check_regression([_report()], window=0)
        with pytest.raises(ValueError, match="tolerance"):
            check_regression([_report()], tolerance=0.0)

    def test_as_dict_is_json_serializable(self):
        report = check_regression([_report()], candidate=_report())
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is True
        assert len(payload["findings"]) == len(GATED_METRICS)


class TestCheckRegressionCli:
    @pytest.fixture()
    def tool(self):
        import importlib.util
        import pathlib
        path = (pathlib.Path(__file__).resolve().parents[2]
                / "tools" / "check_regression.py")
        spec = importlib.util.spec_from_file_location("check_regression",
                                                      path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        return mod

    def test_pass_and_fail_exit_codes(self, tool, tmp_path):
        history = tmp_path / "h.jsonl"
        append_history(history, _report(aps=1000.0))
        append_history(history, _report(aps=990.0))
        assert tool.main(["--history", str(history)]) == 0

        append_history(history, _report(aps=100.0))
        assert tool.main(["--history", str(history)]) == 1

    def test_candidate_flag(self, tool, tmp_path):
        history = tmp_path / "h.jsonl"
        append_history(history, _report(aps=1000.0))
        cand = tmp_path / "c.json"
        cand.write_text(json.dumps(_report(aps=500.0)))
        assert tool.main(["--history", str(history),
                          "--candidate", str(cand)]) == 1
        assert tool.main(["--history", str(history),
                          "--candidate", str(cand),
                          "--tolerance", "0.6"]) == 0

    def test_json_output(self, tool, tmp_path, capsys):
        history = tmp_path / "h.jsonl"
        append_history(history, _report())
        assert tool.main(["--history", str(history), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True

    def test_usage_errors_exit_2(self, tool, tmp_path):
        assert tool.main(["--history", str(tmp_path / "missing.jsonl")]) == 2
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert tool.main(["--history", str(empty)]) == 2
