"""Unit tests for the trace directory layout and the shared trace cache."""

import numpy as np
import pytest

from repro.trace import (
    TraceCache,
    TraceWorkload,
    load_trace_dir,
    record_trace,
    save_trace_dir,
    trace_key,
)
from repro.trace.recorder import MANIFEST_NAME
from repro.workloads import make_workload

from tests.conftest import StreamWorkload


class TestTraceDir:
    def test_roundtrip(self, tmp_path):
        data = record_trace(StreamWorkload(size_mb=2, iterations=2), seed=1)
        path = save_trace_dir(data, tmp_path / "t")
        loaded = load_trace_dir(path)
        assert loaded.alloc_names == data.alloc_names
        assert loaded.alloc_advice == data.alloc_advice
        assert loaded.kernel_names == data.kernel_names
        assert loaded.meta == data.meta
        for name in ("alloc_sizes", "alloc_read_only", "kernel_iterations",
                     "wave_kernel", "wave_offsets", "pages", "is_write",
                     "counts"):
            assert np.array_equal(getattr(loaded, name),
                                  getattr(data, name)), name
        # wave_compute is float and uses NaN for "no explicit cost".
        assert np.array_equal(loaded.wave_compute, data.wave_compute,
                              equal_nan=True)
        loaded.validate()

    def test_arrays_are_memory_mapped(self, tmp_path):
        data = record_trace(StreamWorkload(size_mb=2), seed=0)
        path = save_trace_dir(data, tmp_path / "t")
        loaded = load_trace_dir(path)
        assert isinstance(loaded.pages, np.memmap)
        plain = load_trace_dir(path, mmap=False)
        assert not isinstance(plain.pages, np.memmap)
        assert np.array_equal(plain.pages, loaded.pages)

    def test_manifest_is_commit_marker(self, tmp_path):
        data = record_trace(StreamWorkload(size_mb=2), seed=0)
        path = save_trace_dir(data, tmp_path / "t")
        (path / MANIFEST_NAME).unlink()
        with pytest.raises(FileNotFoundError):
            load_trace_dir(path)

    def test_replay_accepts_directory_path(self, tmp_path):
        data = record_trace(make_workload("ra", "tiny"), seed=2)
        path = save_trace_dir(data, tmp_path / "t")
        wl = TraceWorkload(str(path))
        assert wl.name == "ra"


class TestTraceKey:
    def test_stable_and_distinct(self):
        assert trace_key("ra", "tiny", 0) == trace_key("ra", "tiny", 0)
        keys = {trace_key("ra", "tiny", 0), trace_key("ra", "tiny", 1),
                trace_key("ra", "small", 0), trace_key("bfs", "tiny", 0)}
        assert len(keys) == 4


class TestTraceCache:
    def test_records_then_hits(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        p1 = cache.get_or_record("ra", "tiny", 0)
        assert (p1 / MANIFEST_NAME).exists()
        assert (cache.recorded, cache.hits) == (1, 0)
        p2 = cache.get_or_record("ra", "tiny", 0)
        assert p2 == p1
        assert (cache.recorded, cache.hits) == (1, 1)

    def test_distinct_streams_get_distinct_entries(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        a = cache.get_or_record("ra", "tiny", 0)
        b = cache.get_or_record("ra", "tiny", 1)
        assert a != b
        assert cache.recorded == 2

    def test_entry_names_are_human_readable(self, tmp_path):
        cache = TraceCache(tmp_path)
        path = cache.path_for("sssp", "tiny", 3)
        assert path.name.startswith("sssp-tiny-s3-")

    def test_no_temp_dirs_left_behind(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        cache.get_or_record("ra", "tiny", 0)
        leftovers = [p for p in (tmp_path / "cache").iterdir()
                     if ".tmp-" in p.name]
        assert leftovers == []

    def test_losing_a_commit_race_uses_winner(self, tmp_path, monkeypatch):
        import pathlib

        import repro.trace.cache as cache_mod
        cache = TraceCache(tmp_path / "cache")

        def racing_rename(src, dst):
            # A concurrent recorder lands the entry first; ours fails.
            dst_path = pathlib.Path(dst)
            if not dst_path.exists():
                data = record_trace(make_workload("ra", "tiny"), seed=0)
                save_trace_dir(data, dst_path)
            raise OSError("simulated rename race")

        monkeypatch.setattr(cache_mod.os, "rename", racing_rename)
        path = cache.get_or_record("ra", "tiny", 0)
        monkeypatch.undo()
        assert (path / MANIFEST_NAME).exists()
        # The loser's temp directory was discarded.
        leftovers = [p for p in path.parent.iterdir() if ".tmp-" in p.name]
        assert leftovers == []
        assert cache.get_or_record("ra", "tiny", 0) == path

    def test_cached_entry_replays(self, tmp_path):
        cache = TraceCache(tmp_path / "cache")
        path = cache.get_or_record("ra", "tiny", 0)
        wl = TraceWorkload(str(path))
        live = record_trace(make_workload("ra", "tiny"), seed=0)
        replayed = record_trace(wl, seed=0)
        assert np.array_equal(replayed.pages, live.pages)
        assert np.array_equal(replayed.counts, live.counts)
