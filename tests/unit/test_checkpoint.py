"""Unit tests for the JSONL checkpoint journal."""

import json

import pytest

from repro.analysis.checkpoint import (
    CheckpointJournal,
    cell_key,
    decode_config,
    decode_result,
    encode_config,
    encode_result,
)
from repro.analysis.experiments import run_single
from repro.analysis.parallel import GridCell
from repro.config import (
    EvictionGranularity,
    MigrationPolicy,
    PrefetcherKind,
    SimulationConfig,
)


@pytest.fixture(scope="module")
def tiny_result():
    return run_single("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")


class TestEncoding:
    def test_cell_key_is_canonical(self):
        a = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25)
        b = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25)
        c = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.0)
        assert cell_key(a) == cell_key(b)
        assert cell_key(a) != cell_key(c)
        # The key must survive a JSON round-trip unchanged (that is how
        # resume matches journal lines back to requested cells).
        assert json.dumps(json.loads(cell_key(a)),
                          sort_keys=True) == cell_key(a)

    def test_config_roundtrip_exact(self):
        cfg = (SimulationConfig(seed=3)
               .with_policy(MigrationPolicy.OVERSUB, static_threshold=16)
               .with_eviction_granularity(EvictionGranularity.BLOCK_64KB)
               .with_prefetcher(PrefetcherKind.SEQUENTIAL, degree=2)
               .with_faults(transfer_fault_rate=0.125, max_retries=1))
        assert decode_config(encode_config(cfg)) == cfg

    def test_result_roundtrip_exact(self, tiny_result):
        clone = decode_result(encode_result(tiny_result))
        assert clone.workload == tiny_result.workload
        assert clone.config == tiny_result.config
        assert clone.total_cycles == tiny_result.total_cycles
        assert clone.timing == tiny_result.timing
        assert clone.events == tiny_result.events
        assert clone.footprint_bytes == tiny_result.footprint_bytes

    def test_stats_not_serialized(self, tiny_result):
        assert "stats" not in encode_result(tiny_result)
        assert decode_result(encode_result(tiny_result)).stats is None


class TestJournal:
    def test_append_load_roundtrip(self, tmp_path, tiny_result):
        path = tmp_path / "journal.jsonl"
        cell = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        with CheckpointJournal(path) as journal:
            journal.append(cell, tiny_result)
        loaded = CheckpointJournal(path).load()
        assert set(loaded) == {cell_key(cell)}
        assert loaded[cell_key(cell)].total_cycles \
            == tiny_result.total_cycles

    def test_missing_file_loads_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "nope.jsonl").load() == {}

    def test_torn_line_skipped(self, tmp_path, tiny_result):
        path = tmp_path / "journal.jsonl"
        cell = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        with CheckpointJournal(path) as journal:
            journal.append(cell, tiny_result)
        committed = path.read_text()
        # Simulate a kill mid-write: a second entry torn halfway through.
        path.write_text(committed + committed[:len(committed) // 2])
        loaded = CheckpointJournal(path).load()
        assert set(loaded) == {cell_key(cell)}

    def test_garbage_lines_skipped(self, tmp_path, tiny_result):
        path = tmp_path / "journal.jsonl"
        cell = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        with CheckpointJournal(path) as journal:
            journal.append(cell, tiny_result)
        with open(path, "a") as fh:
            fh.write("not json at all\n")
            fh.write('{"cell": {"workload": "x"}}\n')  # missing result
            fh.write("\n")
        assert set(CheckpointJournal(path).load()) == {cell_key(cell)}

    def test_duplicate_key_last_wins(self, tmp_path, tiny_result):
        path = tmp_path / "journal.jsonl"
        cell = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        doctored = decode_result(encode_result(tiny_result))
        doctored.total_cycles = 123.0
        with CheckpointJournal(path) as journal:
            journal.append(cell, tiny_result)
            journal.append(cell, doctored)
        loaded = CheckpointJournal(path).load()
        assert loaded[cell_key(cell)].total_cycles == 123.0

    def test_append_creates_parent_dirs(self, tmp_path, tiny_result):
        path = tmp_path / "deep" / "nested" / "journal.jsonl"
        cell = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        with CheckpointJournal(path) as journal:
            journal.append(cell, tiny_result)
        assert path.exists()
