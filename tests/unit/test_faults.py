"""Unit tests for the fault model and config validation layer."""

import dataclasses

import pytest

from repro.config import FaultConfig, SimulationConfig
from repro.uvm.faults import FaultInjector


class TestFaultConfig:
    def test_defaults_disabled(self):
        cfg = FaultConfig()
        assert not cfg.enabled
        assert cfg.max_retries == 3

    def test_enabled_when_any_rate_positive(self):
        assert FaultConfig(transfer_fault_rate=0.1).enabled
        assert FaultConfig(migration_fault_rate=0.1).enabled

    @pytest.mark.parametrize("field", ["transfer_fault_rate",
                                       "migration_fault_rate"])
    @pytest.mark.parametrize("rate", [-0.1, 1.0, 2.0])
    def test_rates_must_be_probabilities_below_one(self, field, rate):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: rate})

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_retries"):
            FaultConfig(max_retries=-1)

    def test_backoff_validation(self):
        with pytest.raises(ValueError, match="retry_backoff_us"):
            FaultConfig(retry_backoff_us=-1.0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            FaultConfig(backoff_multiplier=0.5)

    def test_total_backoff_geometric(self):
        cfg = FaultConfig(retry_backoff_us=5.0, backoff_multiplier=2.0)
        assert cfg.total_backoff_us(0) == 0.0
        assert cfg.total_backoff_us(1) == pytest.approx(5.0)
        assert cfg.total_backoff_us(3) == pytest.approx(5 + 10 + 20)

    def test_total_backoff_constant_multiplier(self):
        cfg = FaultConfig(retry_backoff_us=5.0, backoff_multiplier=1.0)
        assert cfg.total_backoff_us(4) == pytest.approx(20.0)


class TestFaultInjector:
    def test_zero_rate_always_succeeds_without_draws(self):
        inj = FaultInjector(FaultConfig(), seed=0)
        state_before = inj._rng.bit_generator.state
        for _ in range(10):
            assert inj.migration_attempt() == (0, True)
        assert inj._rng.bit_generator.state == state_before

    def test_deterministic_per_seed(self):
        cfg = FaultConfig(transfer_fault_rate=0.4,
                          migration_fault_rate=0.2, max_retries=2)
        a = FaultInjector(cfg, seed=42)
        b = FaultInjector(cfg, seed=42)
        seq_a = [a.migration_attempt() for _ in range(200)]
        seq_b = [b.migration_attempt() for _ in range(200)]
        assert seq_a == seq_b
        assert a.injected_transfer_faults == b.injected_transfer_faults
        assert a.injected_migration_faults == b.injected_migration_faults

    def test_different_seeds_diverge(self):
        cfg = FaultConfig(transfer_fault_rate=0.4, max_retries=2)
        a = FaultInjector(cfg, seed=1)
        b = FaultInjector(cfg, seed=2)
        assert ([a.migration_attempt() for _ in range(100)]
                != [b.migration_attempt() for _ in range(100)])

    def test_failures_bounded_by_retry_budget(self):
        cfg = FaultConfig(transfer_fault_rate=0.9, max_retries=2)
        inj = FaultInjector(cfg, seed=0)
        saw_degrade = False
        for _ in range(100):
            failures, ok = inj.migration_attempt()
            assert failures <= cfg.max_retries + 1
            if not ok:
                saw_degrade = True
                assert failures == cfg.max_retries + 1
        assert saw_degrade
        assert inj.injected_transfer_faults > 0

    def test_counters_track_fault_sites(self):
        cfg = FaultConfig(migration_fault_rate=0.9, max_retries=1)
        inj = FaultInjector(cfg, seed=0)
        for _ in range(50):
            inj.migration_attempt()
        assert inj.injected_migration_faults > 0
        assert inj.injected_transfer_faults == 0


class TestConfigValidate:
    def test_default_config_valid(self):
        cfg = SimulationConfig()
        assert cfg.validate() is cfg

    def test_catches_mutated_subconfig(self):
        cfg = SimulationConfig()
        object.__setattr__(cfg.faults, "transfer_fault_rate", 2.0)
        with pytest.raises(ValueError, match="faults.*transfer_fault_rate"):
            cfg.validate()

    def test_cross_field_threshold_vs_counter(self):
        cfg = SimulationConfig()
        object.__setattr__(cfg.policy, "static_threshold",
                           cfg.policy.counter_max + 1)
        with pytest.raises(ValueError, match="static_threshold"):
            cfg.validate()

    def test_capacity_must_fit_eviction_granule(self):
        cfg = SimulationConfig()
        object.__setattr__(cfg.memory, "device_capacity", 1024)
        with pytest.raises(ValueError, match="device_capacity"):
            cfg.validate()

    def test_reports_all_errors_at_once(self):
        cfg = SimulationConfig()
        object.__setattr__(cfg.faults, "max_retries", -5)
        object.__setattr__(cfg.policy, "static_threshold",
                           cfg.policy.counter_max + 1)
        with pytest.raises(ValueError) as exc:
            cfg.validate()
        message = str(exc.value)
        assert "max_retries" in message and "static_threshold" in message

    def test_with_faults_returns_validated_copy(self):
        cfg = SimulationConfig().with_faults(transfer_fault_rate=0.25,
                                             max_retries=5)
        assert cfg.faults.transfer_fault_rate == 0.25
        assert cfg.faults.max_retries == 5
        with pytest.raises(ValueError):
            SimulationConfig().with_faults(transfer_fault_rate=1.5)

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            FaultConfig().transfer_fault_rate = 0.5
