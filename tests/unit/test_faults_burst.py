"""Unit tests for the correlated (Markov-bursty) fault mode."""

import dataclasses

import pytest

from repro.config import FaultConfig, MigrationPolicy, SimulationConfig
from repro.sim.simulator import Simulator
from repro.uvm.faults import FaultInjector
from repro.workloads import make_workload


class TestBurstConfig:
    def test_disarmed_by_default(self):
        cfg = FaultConfig(transfer_fault_rate=0.1)
        assert not cfg.burst_enabled

    def test_armed_by_on_probability(self):
        cfg = FaultConfig(transfer_fault_rate=0.05, burst_on_prob=0.02)
        assert cfg.burst_enabled

    @pytest.mark.parametrize("field", ["burst_on_prob", "burst_off_prob"])
    def test_probabilities_validated(self, field):
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: -0.1})
        with pytest.raises(ValueError, match=field):
            FaultConfig(**{field: 1.5})

    def test_multiplier_must_amplify(self):
        with pytest.raises(ValueError, match="burst_multiplier"):
            FaultConfig(burst_multiplier=0.5)

    def test_boosted_rate_must_stay_below_one(self):
        with pytest.raises(ValueError, match="burst_multiplier"):
            FaultConfig(transfer_fault_rate=0.2, burst_on_prob=0.1,
                        burst_multiplier=8.0)


class TestBurstInjector:
    def _injector(self, seed=0, **kw):
        cfg = FaultConfig(**{"transfer_fault_rate": 0.05,
                             "burst_on_prob": 0.05,
                             "burst_off_prob": 0.2,
                             "burst_multiplier": 4.0, **kw})
        return FaultInjector(cfg, seed=seed)

    def test_storm_transitions_occur(self):
        inj = self._injector()
        for _ in range(2000):
            inj.migration_attempt()
        assert inj.burst_transitions > 0

    def test_storm_raises_fault_density(self):
        calm = FaultInjector(FaultConfig(transfer_fault_rate=0.05), seed=1)
        bursty = self._injector(seed=1)
        n = 5000
        for _ in range(n):
            calm.migration_attempt()
            bursty.migration_attempt()
        assert (bursty.injected_transfer_faults
                > calm.injected_transfer_faults)

    def test_deterministic_per_seed(self):
        def trace(seed):
            inj = self._injector(seed=seed)
            out = [inj.migration_attempt() for _ in range(500)]
            return out, inj.burst_transitions, inj.in_burst

        assert trace(3) == trace(3)
        assert trace(3) != trace(4)

    def test_disarmed_chain_consumes_no_randomness(self):
        """burst_on_prob=0 must be draw-for-draw identical to the
        pre-burst fault model (no Markov step before the retry loop)."""
        plain = FaultInjector(FaultConfig(transfer_fault_rate=0.1), seed=7)
        disarmed = FaultInjector(FaultConfig(transfer_fault_rate=0.1,
                                             burst_off_prob=0.9,
                                             burst_multiplier=16.0), seed=7)
        for _ in range(500):
            assert plain.migration_attempt() == disarmed.migration_attempt()
        assert disarmed.burst_transitions == 0


class TestRateZeroBitIdentity:
    def test_zero_rates_with_burst_fields_change_nothing(self):
        """Burst knobs behind rate 0.0 keep runs bit-identical to a
        fault-free build (the injector is never constructed)."""
        def run(faults):
            cfg = dataclasses.replace(
                SimulationConfig(seed=0), faults=faults).with_policy(
                    MigrationPolicy.ADAPTIVE)
            r = Simulator(cfg).run(make_workload("ra", "tiny"),
                                   oversubscription=1.25)
            return r.total_cycles, r.pages_thrashed, r.events

        base = run(FaultConfig())
        armed = run(FaultConfig(burst_on_prob=0.5, burst_off_prob=0.5,
                                burst_multiplier=16.0))
        assert base == armed
