"""Unit tests for the extended suite (pagerank, spmv)."""

import numpy as np
import pytest

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.memory.allocator import VirtualAddressSpace
from repro.workloads import (
    ALL_WORKLOADS,
    EXTENDED_WORKLOADS,
    Category,
    make_workload,
    workload_category,
    workload_names,
)


def build(name, scale="tiny", seed=0):
    wl = make_workload(name, scale)
    wl.build(VirtualAddressSpace(), np.random.default_rng(seed))
    return wl


class TestRegistry:
    def test_extended_not_in_paper_suite(self):
        assert not set(EXTENDED_WORKLOADS) & set(ALL_WORKLOADS)
        assert workload_names() == ALL_WORKLOADS
        assert workload_names(extended=True) == \
            ALL_WORKLOADS + EXTENDED_WORKLOADS

    @pytest.mark.parametrize("name", EXTENDED_WORKLOADS)
    def test_categorized_irregular(self, name):
        assert workload_category(name) is Category.IRREGULAR


@pytest.mark.parametrize("name", EXTENDED_WORKLOADS)
class TestExtendedWorkloads:
    def test_builds_and_runs(self, name):
        cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.ADAPTIVE)
        r = Simulator(cfg).run(make_workload(name, "tiny"),
                               oversubscription=1.25)
        assert r.total_cycles > 0
        served = (r.events.n_local + r.events.n_remote
                  + r.events.fault_migrations)
        assert served == r.events.n_accesses

    def test_footprint_large_enough_for_oversubscription(self, name):
        wl = build(name)
        assert wl.footprint_bytes > 8 * 2**20

    def test_deterministic(self, name):
        def fingerprint():
            wl = build(name, seed=5)
            acc = 0
            for launch in wl.kernels():
                for wave in launch.waves():
                    acc += int(wave.pages.sum()) + wave.n_accesses
            return acc
        assert fingerprint() == fingerprint()


class TestPagerankPattern:
    def test_hot_cold_split(self):
        """Rank vectors are far hotter per page than the edge array."""
        wl = build("pagerank")
        edges, rank = wl.edges, wl.rank
        edge_acc = rank_acc = 0
        for launch in wl.kernels():
            for wave in launch.waves():
                for p, c in zip(wave.pages, wave.counts):
                    if edges.first_page <= p < edges.last_page:
                        edge_acc += c
                    elif rank.first_page <= p < rank.last_page:
                        rank_acc += c
        assert (rank_acc / rank.num_pages) > 3 * (edge_acc / edges.num_pages)

    def test_adaptive_helps_under_oversubscription(self):
        def run(policy):
            cfg = SimulationConfig(seed=1).with_policy(policy)
            return Simulator(cfg).run(make_workload("pagerank", "tiny"),
                                      oversubscription=1.25)
        base = run(MigrationPolicy.DISABLED)
        adap = run(MigrationPolicy.ADAPTIVE)
        assert adap.pages_thrashed < base.pages_thrashed
        assert adap.total_cycles < base.total_cycles


class TestSpmvPattern:
    def test_matrix_streamed_vector_gathered(self):
        wl = build("spmv")
        vals, x = wl.values, wl.x
        # Matrix pages are touched densely (32 accesses per page); the
        # x-vector is gathered sparsely per wave.
        for launch in wl.kernels():
            for wave in launch.waves():
                vmask = ((wave.pages >= vals.first_page)
                         & (wave.pages < vals.last_page))
                if vmask.any():
                    assert wave.counts[vmask].max() == 32
            break

    def test_x_vector_read_only(self):
        wl = build("spmv")
        x = wl.x
        for launch in wl.kernels():
            for wave in launch.waves():
                mask = (wave.pages >= x.first_page) & \
                       (wave.pages < x.last_page)
                assert not wave.is_write[mask].any()
