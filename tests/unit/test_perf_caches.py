"""Unit tests for the hot-path micro-caches added with the fast path.

Covers the satellite optimizations riding along with the resident fast
path: the chunk directory's cached block-index arrays, the shared
default-counts wave arrays, the code-generated ``WaveOutcome.merge``,
the checkpoint journal's trace-path exclusion, and the fast-path
observability rollups.
"""

import dataclasses

import numpy as np
import pytest

from repro.analysis import GridCell, cell_key
from repro.analysis.checkpoint import CheckpointJournal
from repro.analysis.parallel import run_cell
from repro.config import MigrationPolicy, SimulationConfig
from repro.obs import MetricsRegistry, Observability
from repro.sim.simulator import Simulator
from repro.uvm.driver import WaveOutcome
from repro.uvm.eviction import ChunkDirectory
from repro.workloads import make_workload
from repro.workloads.base import Wave, default_counts

from tests.conftest import make_vas


class TestChunkBlockCache:
    def _directory(self):
        vas = make_vas(4, 8)
        return ChunkDirectory(vas.chunks, vas.total_blocks)

    def test_blocks_of_chunk_is_cached_and_read_only(self):
        d = self._directory()
        a = d.blocks_of_chunk(0)
        assert d.blocks_of_chunk(0) is a
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 99

    def test_cached_blocks_match_geometry(self):
        d = self._directory()
        for cid in range(d.num_chunks):
            blocks = d.blocks_of_chunk(cid)
            first = int(d.first_block[cid])
            assert np.array_equal(
                blocks, np.arange(first, first + blocks.size))
            assert np.all(d.chunk_of_block[blocks] == cid)


class TestDefaultCounts:
    def test_shared_and_immutable(self):
        a = default_counts(7)
        assert default_counts(7) is a
        assert a.dtype == np.int64
        assert np.all(a == 1)
        assert not a.flags.writeable
        with pytest.raises(ValueError):
            a[0] = 2

    def test_wave_defaults_to_shared_ones(self):
        w = Wave(np.arange(5, dtype=np.int64), np.zeros(5, dtype=bool))
        assert w.counts is default_counts(5)

    def test_explicit_counts_untouched(self):
        counts = np.full(3, 4, dtype=np.int64)
        w = Wave(np.arange(3, dtype=np.int64), np.zeros(3, dtype=bool),
                 counts=counts)
        assert w.counts is counts


class TestMergeCodegen:
    def test_merge_accumulates_every_field(self):
        fields = [f.name for f in dataclasses.fields(WaveOutcome)]
        a = WaveOutcome(**{n: i + 1 for i, n in enumerate(fields)})
        b = WaveOutcome(**{n: 100 * (i + 1) for i, n in enumerate(fields)})
        a.merge(b)
        for i, name in enumerate(fields):
            assert getattr(a, name) == 101 * (i + 1), name

    def test_merge_identity(self):
        out = WaveOutcome(n_accesses=3, n_local=2, n_remote=1)
        out.merge(WaveOutcome())
        assert out == WaveOutcome(n_accesses=3, n_local=2, n_remote=1)


class TestCheckpointTracePathExclusion:
    def test_cell_key_ignores_trace_path(self):
        plain = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        traced = dataclasses.replace(plain, trace_path="/some/cache/entry")
        assert cell_key(plain) == cell_key(traced)

    def test_journal_serves_cells_across_replay_sources(self, tmp_path):
        """A cell journaled from a trace-replaying run resumes a live
        cell of the same spec (and vice versa)."""
        plain = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")
        traced = dataclasses.replace(plain, trace_path="/some/cache/entry")
        result = run_cell(plain)
        path = tmp_path / "journal.jsonl"
        with CheckpointJournal(path) as journal:
            journal.append(traced, result)
        cached = CheckpointJournal(path).load()
        assert cell_key(plain) in cached
        assert cached[cell_key(plain)].total_cycles == result.total_cycles


class TestFastPathMetrics:
    def test_hit_rate_rollup_exported(self):
        obs = Observability(metrics=MetricsRegistry())
        cfg = SimulationConfig().with_policy(MigrationPolicy.ADAPTIVE)
        Simulator(cfg).run(make_workload("ra", "tiny"),
                           oversubscription=0.5, obs=obs)
        snap = obs.metrics.as_dict()
        assert "driver.fast_path_hit_rate" in snap
        waves = snap["driver.waves"]["value"]
        hits = snap["driver.fast_path_waves"]["value"]
        assert waves > 0 and 0 <= hits <= waves
        assert snap["driver.fast_path_hit_rate"]["value"] == \
            pytest.approx(hits / waves)
