"""Unit tests for DeviceMemory, HostMemory and ResidencyMap."""

import numpy as np
import pytest

from repro.memory.device import DeviceMemory
from repro.memory.host import HostMemory
from repro.memory.layout import CHUNK_SIZE
from repro.uvm.residency import ResidencyMap


class TestDeviceMemory:
    def test_capacity_blocks(self):
        dev = DeviceMemory(2 * CHUNK_SIZE)
        assert dev.capacity_blocks == 64
        assert dev.capacity_bytes == 2 * CHUNK_SIZE

    def test_allocate_release_cycle(self):
        dev = DeviceMemory(CHUNK_SIZE)
        dev.allocate(10)
        assert dev.used_blocks == 10
        assert dev.free_blocks == 22
        dev.release(4)
        assert dev.used_blocks == 6

    def test_occupancy_fraction(self):
        dev = DeviceMemory(CHUNK_SIZE)
        dev.allocate(16)
        assert dev.occupancy == pytest.approx(0.5)

    def test_overflow_raises(self):
        dev = DeviceMemory(CHUNK_SIZE)
        with pytest.raises(RuntimeError):
            dev.allocate(33)

    def test_release_too_much_raises(self):
        dev = DeviceMemory(CHUNK_SIZE)
        dev.allocate(2)
        with pytest.raises(ValueError):
            dev.release(3)

    def test_pressure_flag_sticks(self):
        dev = DeviceMemory(CHUNK_SIZE)
        assert not dev.oversubscribed
        dev.note_pressure()
        assert dev.oversubscribed

    def test_peak_tracking(self):
        dev = DeviceMemory(CHUNK_SIZE)
        dev.allocate(20)
        dev.release(15)
        dev.allocate(5)
        assert dev.peak_used_blocks == 20

    def test_rejects_tiny_capacity(self):
        with pytest.raises(ValueError):
            DeviceMemory(CHUNK_SIZE - 1)


class TestHostMemory:
    def test_initially_all_valid(self):
        host = HostMemory(8)
        assert host.valid.all()
        assert not host.remote_mapped.any()

    def test_migrate_invalidates_and_unmaps(self):
        host = HostMemory(8)
        host.map_remote(np.array([1, 2]))
        host.migrate_to_device(np.array([1]))
        assert not host.valid[1]
        assert not host.remote_mapped[1]
        assert host.remote_mapped[2]

    def test_eviction_revalidates(self):
        host = HostMemory(4)
        host.migrate_to_device(np.array([0]))
        host.accept_eviction(np.array([0]))
        assert host.valid[0]

    def test_remote_map_requires_host_valid(self):
        host = HostMemory(4)
        host.migrate_to_device(np.array([0]))
        with pytest.raises(RuntimeError):
            host.map_remote(np.array([0]))

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            HostMemory(0)


class TestResidencyMap:
    def test_mark_and_count(self):
        res = ResidencyMap(10)
        res.mark_resident(np.array([2, 5]))
        assert res.resident_count == 2
        assert res.resident[2] and res.resident[5]

    def test_mark_resident_clears_dirty(self):
        res = ResidencyMap(4)
        res.mark_resident(np.array([1]))
        res.mark_dirty(np.array([1]))
        res.mark_resident(np.array([1]))  # re-install
        assert not res.dirty[1]

    def test_evict_returns_dirty_count(self):
        res = ResidencyMap(6)
        blocks = np.array([0, 1, 2])
        res.mark_resident(blocks)
        res.mark_dirty(np.array([0, 2]))
        assert res.evict(blocks) == 2
        assert res.resident_count == 0
        assert not res.dirty.any()

    def test_rejects_empty_space(self):
        with pytest.raises(ValueError):
            ResidencyMap(0)
