"""Unit tests for the multi-GPU collaborative simulator."""

import pytest

from repro.config import MigrationPolicy, SimulationConfig
from repro.multigpu import MultiGpuSimulator
from repro.sim.simulator import Simulator
from repro.workloads import make_workload

from tests.conftest import RandomWorkload, StreamWorkload


def config(policy=MigrationPolicy.DISABLED, seed=0):
    return SimulationConfig(seed=seed).with_policy(policy)


class TestConstruction:
    def test_rejects_zero_gpus(self):
        with pytest.raises(ValueError):
            MultiGpuSimulator(config(), num_gpus=0)

    def test_rejects_bad_throttle(self):
        with pytest.raises(ValueError):
            MultiGpuSimulator(config(), num_gpus=2, throttle=0.0)
        with pytest.raises(ValueError):
            MultiGpuSimulator(config(), num_gpus=2, throttle=1.5)


class TestSingleGpuEquivalence:
    def test_one_gpu_matches_simulator(self):
        """N=1 cluster reproduces the single-GPU simulator exactly."""
        single = Simulator(config(seed=3)).run(
            make_workload("ra", "tiny"), oversubscription=1.25)
        multi = MultiGpuSimulator(config(seed=3), num_gpus=1).run(
            make_workload("ra", "tiny"), oversubscription=1.25)
        assert multi.makespan_cycles == pytest.approx(single.total_cycles)
        assert multi.per_gpu_events[0] == single.events


class TestPartitioning:
    def test_every_access_served_once(self):
        multi = MultiGpuSimulator(config(seed=1), num_gpus=3).run(
            RandomWorkload(size_mb=12), oversubscription=1.25)
        total = sum(ev.n_accesses for ev in multi.per_gpu_events)
        served = sum(ev.n_local + ev.n_remote + ev.fault_migrations
                     for ev in multi.per_gpu_events)
        assert total > 0
        assert served == total

    def test_partitions_are_disjoint(self):
        """No block is ever resident on two devices."""
        cfg = config(seed=1)
        sim = MultiGpuSimulator(cfg, num_gpus=2)
        result = sim.run(RandomWorkload(size_mb=8), oversubscription=1.0)
        assert result.num_gpus == 2
        # Each device saw a nonempty, roughly even share.
        accesses = [ev.n_accesses for ev in result.per_gpu_events]
        assert all(a > 0 for a in accesses)

    def test_scaling_relieves_oversubscription(self):
        one = MultiGpuSimulator(config(seed=1), num_gpus=1).run(
            make_workload("ra", "tiny"), oversubscription=1.25)
        two = MultiGpuSimulator(config(seed=1), num_gpus=2).run(
            make_workload("ra", "tiny"), oversubscription=1.25)
        assert two.total_thrash < one.total_thrash
        assert two.makespan_cycles < one.makespan_cycles

    def test_makespan_at_least_max_busy(self):
        res = MultiGpuSimulator(config(seed=1), num_gpus=2).run(
            StreamWorkload(size_mb=8), oversubscription=1.0)
        assert res.makespan_cycles >= max(res.per_gpu_cycles) - 1e-6
        assert res.makespan_cycles <= sum(res.per_gpu_cycles) + 1e-6


class TestThrottling:
    def test_throttle_reduces_capacity(self):
        full = MultiGpuSimulator(config(seed=1), num_gpus=2, throttle=1.0)
        capped = MultiGpuSimulator(config(seed=1), num_gpus=2, throttle=0.4)
        r_full = full.run(make_workload("ra", "tiny"), oversubscription=1.0)
        r_capped = capped.run(make_workload("ra", "tiny"),
                              oversubscription=1.0)
        assert r_capped.capacity_per_gpu_bytes < r_full.capacity_per_gpu_bytes

    def test_adaptive_absorbs_throttle(self):
        base = MultiGpuSimulator(config(MigrationPolicy.DISABLED, 1),
                                 num_gpus=2, throttle=0.35).run(
            make_workload("ra", "tiny"), oversubscription=1.0)
        adap = MultiGpuSimulator(config(MigrationPolicy.ADAPTIVE, 1),
                                 num_gpus=2, throttle=0.35).run(
            make_workload("ra", "tiny"), oversubscription=1.0)
        assert base.total_thrash > 0
        assert adap.total_thrash < base.total_thrash
        assert adap.makespan_cycles < base.makespan_cycles

    def test_speedup_helper(self):
        a = MultiGpuSimulator(config(seed=1), num_gpus=1).run(
            make_workload("ra", "tiny"), oversubscription=1.25)
        b = MultiGpuSimulator(config(seed=1), num_gpus=2).run(
            make_workload("ra", "tiny"), oversubscription=1.25)
        assert b.speedup_over(a) > 1.0
