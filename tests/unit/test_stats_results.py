"""Unit tests for the stats collector, run results and table rendering."""

import numpy as np
import pytest

from repro.analysis.tables import ascii_bar_chart, comparison_table, format_table
from repro.config import MigrationPolicy, SimulationConfig
from repro.gpu.timing import WaveTiming
from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import CHUNK_SIZE
from repro.sim.results import RunResult
from repro.stats.collector import StatsCollector
from repro.uvm.driver import WaveOutcome


@pytest.fixture
def vas():
    v = VirtualAddressSpace()
    v.malloc_managed("hot", CHUNK_SIZE)
    v.malloc_managed("cold", CHUNK_SIZE, read_only=True)
    return v


class TestCollector:
    def test_histogram_accumulates(self, vas):
        c = StatsCollector(vas, histogram=True)
        pages = np.array([0, 0, 1])
        writes = np.array([False, True, False])
        c.on_wave("k", 0, 0.0, pages, writes)
        assert c.page_reads[0] == 1
        assert c.page_writes[0] == 1
        assert c.page_reads[1] == 1

    def test_histogram_respects_counts(self, vas):
        c = StatsCollector(vas, histogram=True)
        c.on_wave("k", 0, 0.0, np.array([2]), np.array([False]),
                  counts=np.array([32]))
        assert c.page_reads[2] == 32

    def test_allocation_histogram(self, vas):
        c = StatsCollector(vas, histogram=True)
        hot = vas.allocations[0]
        c.on_wave("k", 0, 0.0, np.array([hot.first_page]),
                  np.array([True]))
        h = c.allocation_histogram("hot")
        assert h["writes"][0] == 1
        assert h["reads"].sum() == 0

    def test_allocation_summary_classifies_ro(self, vas):
        c = StatsCollector(vas, histogram=True)
        cold = vas.allocations[1]
        c.on_wave("k", 0, 0.0, np.array([cold.first_page]),
                  np.array([False]))
        rows = {r["name"]: r for r in c.allocation_summary()}
        assert rows["cold"]["read_only"]
        assert rows["cold"]["reads"] == 1

    def test_histogram_disabled_raises(self, vas):
        c = StatsCollector(vas)
        with pytest.raises(RuntimeError):
            c.allocation_summary()

    def test_trace_sampling_caps_size(self, vas):
        c = StatsCollector(vas, trace=True, trace_sample=8)
        pages = np.arange(100, dtype=np.int64)
        c.on_wave("k", 3, 42.0, pages, np.zeros(100, dtype=bool))
        assert len(c.trace) == 1
        rec = c.trace[0]
        assert rec.pages.size == 8
        assert rec.kernel == "k" and rec.iteration == 3
        assert rec.cycle == 42.0

    def test_kernel_stats(self, vas):
        c = StatsCollector(vas)
        c.on_kernel_end("k1", 100.0, 10)
        c.on_kernel_end("k1", 50.0, 5)
        assert c.kernels["k1"].cycles == 150.0
        assert c.kernels["k1"].launches == 2


class TestRunResult:
    def _result(self, cycles=1000.0, **events):
        return RunResult(
            workload="w", config=SimulationConfig(),
            total_cycles=cycles, timing=WaveTiming(total=cycles),
            events=WaveOutcome(**events), footprint_bytes=10 * CHUNK_SIZE,
            device_capacity_bytes=8 * CHUNK_SIZE)

    def test_runtime_seconds(self):
        r = self._result(cycles=1481e6)
        assert r.runtime_seconds == pytest.approx(1.0)

    def test_oversubscription(self):
        assert self._result().oversubscription == pytest.approx(1.25)

    def test_normalization(self):
        a, b = self._result(2000.0), self._result(1000.0)
        assert a.normalized_runtime(b) == pytest.approx(2.0)
        assert b.speedup_over(a) == pytest.approx(2.0)

    def test_hit_ratio(self):
        r = self._result(n_accesses=10, n_local=7)
        assert r.hit_ratio == pytest.approx(0.7)

    def test_summary_keys(self):
        s = self._result().summary()
        for key in ("workload", "policy", "cycles", "faults",
                    "thrash_migrations", "oversubscription"):
            assert key in s


class TestTables:
    def test_format_table_aligns(self):
        txt = format_table(["a", "bb"], [["x", 1.5], ["yy", 2.0]], title="T")
        lines = txt.splitlines()
        assert lines[0] == "T"
        assert "1.500" in txt

    def test_comparison_table_with_paper(self):
        txt = comparison_table("t", ["w1"], {"w1": 1.23}, {"w1": 1.11})
        assert "1.230" in txt and "1.110" in txt

    def test_comparison_table_without_paper(self):
        txt = comparison_table("t", ["w1"], {"w1": 1.23}, None)
        assert "paper" not in txt

    def test_ascii_bar_chart(self):
        txt = ascii_bar_chart("chart", {"a": 1.0, "b": 2.0})
        assert "#" in txt and "2.00x" in txt
