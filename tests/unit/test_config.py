"""Unit tests for configuration dataclasses and Table I defaults."""

import dataclasses

import pytest

from repro.config import (
    EvictionGranularity,
    GpuConfig,
    InterconnectConfig,
    MemoryConfig,
    MigrationPolicy,
    PolicyConfig,
    ReplacementPolicy,
    SimulationConfig,
    capacity_for_oversubscription,
)
from repro.memory.layout import CHUNK_SIZE, MB


class TestTable1Defaults:
    """The Table I values of the paper must be the defaults."""

    def test_gpu(self):
        g = GpuConfig()
        assert g.num_sms == 28
        assert g.cores_per_sm == 128
        assert g.clock_mhz == pytest.approx(1481.0)
        assert g.dram_latency_cycles == 100
        assert g.page_walk_latency_cycles == 100

    def test_interconnect(self):
        i = InterconnectConfig()
        assert i.bandwidth == pytest.approx(16e9)
        assert i.latency_cycles == 100
        assert i.remote_access_latency_cycles == 200
        assert i.fault_handling_us == pytest.approx(45.0)

    def test_policy(self):
        p = PolicyConfig()
        assert p.static_threshold == 8
        assert p.migration_penalty == 8
        assert p.counter_bits == 27
        assert p.roundtrip_bits == 5
        assert p.counter_max == (1 << 27) - 1
        assert p.roundtrip_max == 31

    def test_memory(self):
        m = MemoryConfig()
        assert m.eviction_granularity is EvictionGranularity.CHUNK_2MB
        assert m.replacement is ReplacementPolicy.LRU


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            PolicyConfig(static_threshold=0)

    def test_bad_penalty(self):
        with pytest.raises(ValueError):
            PolicyConfig(migration_penalty=0)

    def test_counter_bits_must_total_32(self):
        with pytest.raises(ValueError):
            PolicyConfig(counter_bits=20, roundtrip_bits=5)

    def test_capacity_below_chunk(self):
        with pytest.raises(ValueError):
            MemoryConfig(device_capacity=CHUNK_SIZE - 1)

    def test_bad_gpu(self):
        with pytest.raises(ValueError):
            GpuConfig(num_sms=0)

    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth=0)


class TestHelpers:
    def test_us_to_cycles(self):
        g = GpuConfig()
        assert g.us_to_cycles(45.0) == round(45.0 * 1481.0)

    def test_with_policy_switches_replacement(self):
        cfg = SimulationConfig()
        assert cfg.with_policy(MigrationPolicy.DISABLED).memory.replacement \
            is ReplacementPolicy.LRU
        for pol in (MigrationPolicy.ALWAYS, MigrationPolicy.OVERSUB,
                    MigrationPolicy.ADAPTIVE):
            assert cfg.with_policy(pol).memory.replacement \
                is ReplacementPolicy.LFU

    def test_with_policy_sets_knobs(self):
        cfg = SimulationConfig().with_policy(
            MigrationPolicy.ADAPTIVE, static_threshold=16,
            migration_penalty=4)
        assert cfg.policy.static_threshold == 16
        assert cfg.policy.migration_penalty == 4

    def test_with_device_capacity(self):
        cfg = SimulationConfig().with_device_capacity(64 * MB)
        assert cfg.memory.device_capacity == 64 * MB

    def test_replace_preserves_others(self):
        cfg = SimulationConfig().replace(seed=42)
        assert cfg.seed == 42
        assert cfg.gpu == SimulationConfig().gpu

    def test_uses_access_counters(self):
        assert not MigrationPolicy.DISABLED.uses_access_counters
        assert MigrationPolicy.ADAPTIVE.uses_access_counters


class TestCapacityForOversubscription:
    def test_at_125_percent(self):
        cap = capacity_for_oversubscription(100 * MB, 1.25)
        assert cap % CHUNK_SIZE == 0
        assert cap >= int(100 * MB / 1.25)
        assert cap < int(100 * MB / 1.25) + CHUNK_SIZE

    def test_exactly_fitting_never_evicts(self):
        cap = capacity_for_oversubscription(100 * MB, 1.0)
        assert cap >= 100 * MB

    def test_headroom_factor(self):
        assert capacity_for_oversubscription(80 * MB, 0.8) >= 100 * MB

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            capacity_for_oversubscription(100 * MB, 0.0)

    def test_clamps_to_one_chunk(self):
        assert capacity_for_oversubscription(1, 1.0) == CHUNK_SIZE
