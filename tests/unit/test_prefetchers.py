"""Unit tests for the prefetch strategies."""

import numpy as np
import pytest

from repro.uvm.prefetchers import (
    NoPrefetchStrategy,
    RandomPrefetchStrategy,
    SequentialPrefetchStrategy,
    TreePrefetchStrategy,
    make_prefetcher,
)
from repro.uvm.tree import PrefetchTree


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("tree", TreePrefetchStrategy),
        ("none", NoPrefetchStrategy),
        ("sequential", SequentialPrefetchStrategy),
        ("random", RandomPrefetchStrategy),
    ])
    def test_make(self, kind, cls):
        assert isinstance(make_prefetcher(kind), cls)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_prefetcher("psychic")

    def test_bad_degree(self):
        with pytest.raises(ValueError):
            SequentialPrefetchStrategy(0)
        with pytest.raises(ValueError):
            RandomPrefetchStrategy(0)


class TestNone:
    def test_installs_only_fault(self):
        tree = PrefetchTree(16)
        pf = NoPrefetchStrategy().on_fault(tree, 5)
        assert pf.size == 0
        assert tree.occupancy == 1
        assert tree.is_resident(5)


class TestSequential:
    def test_prefetches_next_n(self):
        tree = PrefetchTree(16)
        pf = SequentialPrefetchStrategy(3).on_fault(tree, 4)
        assert list(pf) == [5, 6, 7]
        assert tree.occupancy == 4

    def test_skips_resident(self):
        tree = PrefetchTree(16)
        tree.mark_resident(5)
        pf = SequentialPrefetchStrategy(2).on_fault(tree, 4)
        assert list(pf) == [6, 7]

    def test_clamps_at_chunk_end(self):
        tree = PrefetchTree(8)
        pf = SequentialPrefetchStrategy(5).on_fault(tree, 6)
        assert list(pf) == [7]

    def test_invariants(self):
        tree = PrefetchTree(8)
        SequentialPrefetchStrategy(4).on_fault(tree, 0)
        tree.check_invariants()


class TestRandom:
    def test_prefetches_degree_absent(self):
        tree = PrefetchTree(32)
        pf = RandomPrefetchStrategy(4, seed=1).on_fault(tree, 0)
        assert pf.size == 4
        assert tree.occupancy == 5
        assert 0 not in pf
        tree.check_invariants()

    def test_deterministic_per_seed(self):
        a = PrefetchTree(32)
        b = PrefetchTree(32)
        pa = RandomPrefetchStrategy(4, seed=9).on_fault(a, 0)
        pb = RandomPrefetchStrategy(4, seed=9).on_fault(b, 0)
        assert np.array_equal(pa, pb)

    def test_empty_when_full(self):
        tree = PrefetchTree(2)
        tree.mark_resident(1)
        pf = RandomPrefetchStrategy(4).on_fault(tree, 0)
        assert pf.size == 0


class TestTreeStrategy:
    def test_delegates_to_tree(self):
        tree = PrefetchTree(8)
        strat = TreePrefetchStrategy()
        strat.on_fault(tree, 0)
        strat.on_fault(tree, 1)
        pf = strat.on_fault(tree, 2)
        assert list(pf) == [3]


class TestTreeRemove:
    def test_remove_updates_occupancy(self):
        tree = PrefetchTree(8)
        for leaf in range(4):
            tree.mark_resident(leaf)
        tree.remove(2)
        assert tree.occupancy == 3
        assert not tree.is_resident(2)
        tree.check_invariants()

    def test_remove_absent_raises(self):
        tree = PrefetchTree(4)
        with pytest.raises(RuntimeError):
            tree.remove(0)

    def test_remove_then_refault(self):
        tree = PrefetchTree(8)
        tree.mark_resident(0)
        tree.remove(0)
        pf = tree.on_fault(0)
        assert tree.is_resident(0)
        assert pf.size == 0
