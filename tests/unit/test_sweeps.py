"""Unit tests for the oversubscription sweep utilities."""

import pytest

from repro.analysis.sweeps import (
    DEFAULT_LEVELS,
    SweepResult,
    oversubscription_sweep,
)
from repro.config import MigrationPolicy


@pytest.fixture(scope="module")
def ra_sweep():
    return oversubscription_sweep(
        "ra", levels=(0.8, 1.25), scale="tiny",
        policies=(MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE))


class TestSweep:
    def test_structure(self, ra_sweep):
        assert ra_sweep.workload == "ra"
        assert set(ra_sweep.runs) == {"disabled", "adaptive"}
        assert all(len(v) == 2 for v in ra_sweep.runs.values())

    def test_normalized_starts_at_one(self, ra_sweep):
        series = ra_sweep.normalized("disabled")
        assert series[0] == pytest.approx(1.0)
        assert series[1] > 1.0

    def test_advantage_below_capacity_is_neutral(self, ra_sweep):
        adv = ra_sweep.advantage()
        assert 0.8 <= adv[0] <= 1.2
        assert adv[1] < adv[0]

    def test_crossover_found(self, ra_sweep):
        assert ra_sweep.crossover(threshold=0.9) == 1.25

    def test_crossover_none_when_threshold_unreachable(self, ra_sweep):
        assert ra_sweep.crossover(threshold=0.0001) is None

    def test_render(self, ra_sweep):
        txt = ra_sweep.render()
        assert "80%" in txt and "125%" in txt and "adaptive" in txt

    def test_default_levels_sane(self):
        assert DEFAULT_LEVELS[0] < 1.0 < DEFAULT_LEVELS[-1]

    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            oversubscription_sweep("ra", levels=(), scale="tiny")
