"""CLI tests for the observability flags and ``repro inspect``."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["run", "ra", "--events", "e.jsonl", "--metrics", "m.json",
             "--profile"])
        assert args.events == "e.jsonl"
        assert args.metrics == "m.json"
        assert args.profile is True

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["run", "ra"])
        assert args.events is None and args.metrics is None
        assert args.profile is False

    def test_replay_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["trace", "replay", "-i", "t.npz", "--profile"])
        assert args.profile is True

    def test_grid_commands_accept_metrics(self):
        args = build_parser().parse_args(
            ["sweep", "ra", "--metrics", "g.json"])
        assert args.metrics == "g.json"
        args = build_parser().parse_args(
            ["figure", "table1", "--metrics", "g.json"])
        assert args.metrics == "g.json"

    def test_inspect_parses(self):
        args = build_parser().parse_args(["inspect", "e.jsonl", "--top", "3"])
        assert args.events == "e.jsonl" and args.top == 3


class TestExecution:
    def test_run_writes_events_and_metrics(self, tmp_path, capsys):
        ev = tmp_path / "e.jsonl"
        mx = tmp_path / "m.json"
        assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                     "--events", str(ev), "--metrics", str(mx),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "-- profile:" in out

        rows = [json.loads(line) for line in ev.read_text().splitlines()]
        assert rows[0]["event"] == "run_meta"
        assert any(r["event"] == "migration_decision" for r in rows)

        metrics = json.loads(mx.read_text())
        assert "driver.decisions.migrate" in metrics
        assert "engine.wave_cycles" in metrics

    def test_inspect_round_trips_events(self, tmp_path, capsys):
        ev = tmp_path / "e.jsonl"
        assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                     "--events", str(ev)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(ev), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "== event log: ra / adaptive" in out
        assert "migration_decision" in out

    def test_inspect_missing_file_is_cli_error(self):
        with pytest.raises(SystemExit, match="repro inspect"):
            main(["inspect", "/nonexistent/events.jsonl"])

    def test_run_without_flags_prints_no_obs_output(self, tmp_path, capsys):
        assert main(["run", "ra", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "-- profile:" not in out
        assert "[metrics" not in out and "[events" not in out

    def test_sweep_writes_grid_metrics(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        assert main(["sweep", "ra", "--scale", "tiny", "--levels", "1.25",
                     "--policies", "adaptive", "--metrics", str(path)]) == 0
        metrics = json.loads(path.read_text())
        assert metrics["grid.cells_completed"]["value"] == 1
        assert metrics["grid.cell_ms"]["count"] == 1
