"""CLI tests for the observability flags and ``repro inspect``."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["run", "ra", "--events", "e.jsonl", "--metrics", "m.json",
             "--profile"])
        assert args.events == "e.jsonl"
        assert args.metrics == "m.json"
        assert args.profile is True

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["run", "ra"])
        assert args.events is None and args.metrics is None
        assert args.profile is False

    def test_replay_accepts_obs_flags(self):
        args = build_parser().parse_args(
            ["trace", "replay", "-i", "t.npz", "--profile"])
        assert args.profile is True

    def test_grid_commands_accept_metrics(self):
        args = build_parser().parse_args(
            ["sweep", "ra", "--metrics", "g.json"])
        assert args.metrics == "g.json"
        args = build_parser().parse_args(
            ["figure", "table1", "--metrics", "g.json"])
        assert args.metrics == "g.json"

    def test_inspect_parses(self):
        args = build_parser().parse_args(["inspect", "e.jsonl", "--top", "3"])
        assert args.events == "e.jsonl" and args.top == 3

    def test_run_accepts_archive_and_timeline(self):
        args = build_parser().parse_args(
            ["run", "ra", "--archive", "--timeline", "t.json",
             "--runs", "/tmp/r"])
        assert args.archive is True
        assert args.timeline == "t.json"
        assert args.runs == "/tmp/r"
        args = build_parser().parse_args(["run", "ra"])
        assert args.archive is False and args.timeline is None

    def test_grid_commands_accept_archive(self):
        args = build_parser().parse_args(["sweep", "ra", "--archive"])
        assert args.archive is True
        args = build_parser().parse_args(
            ["figure", "table1", "--archive", "--runs", "/tmp/r"])
        assert args.archive is True and args.runs == "/tmp/r"

    def test_runs_and_diff_parse(self):
        args = build_parser().parse_args(["runs"])
        assert args.runs is None
        args = build_parser().parse_args(
            ["diff", "abc", "def", "--json", "--top", "5",
             "--tolerance", "2.5"])
        assert args.run_a == "abc" and args.run_b == "def"
        assert args.json is True and args.top == 5
        assert args.tolerance == 2.5


class TestExecution:
    def test_run_writes_events_and_metrics(self, tmp_path, capsys):
        ev = tmp_path / "e.jsonl"
        mx = tmp_path / "m.json"
        assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                     "--events", str(ev), "--metrics", str(mx),
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "-- profile:" in out

        rows = [json.loads(line) for line in ev.read_text().splitlines()]
        assert rows[0]["event"] == "run_meta"
        assert any(r["event"] == "migration_decision" for r in rows)

        metrics = json.loads(mx.read_text())
        assert "driver.decisions.migrate" in metrics
        assert "engine.wave_cycles" in metrics

    def test_inspect_round_trips_events(self, tmp_path, capsys):
        ev = tmp_path / "e.jsonl"
        assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                     "--events", str(ev)]) == 0
        capsys.readouterr()
        assert main(["inspect", str(ev), "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "== event log: ra / adaptive" in out
        assert "migration_decision" in out

    def test_inspect_missing_file_is_cli_error(self):
        with pytest.raises(SystemExit, match="repro inspect"):
            main(["inspect", "/nonexistent/events.jsonl"])

    def test_run_without_flags_prints_no_obs_output(self, tmp_path, capsys):
        assert main(["run", "ra", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "-- profile:" not in out
        assert "[metrics" not in out and "[events" not in out

    def test_sweep_writes_grid_metrics(self, tmp_path, capsys):
        path = tmp_path / "g.json"
        assert main(["sweep", "ra", "--scale", "tiny", "--levels", "1.25",
                     "--policies", "adaptive", "--metrics", str(path)]) == 0
        metrics = json.loads(path.read_text())
        assert metrics["grid.cells_completed"]["value"] == 1
        assert metrics["grid.cell_ms"]["count"] == 1

    def test_gzip_events_inspect_round_trip(self, tmp_path, capsys):
        import gzip

        ev = tmp_path / "e.jsonl.gz"
        assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                     "--events", str(ev)]) == 0
        capsys.readouterr()
        # the sink actually compressed (magic bytes), and inspect reads it
        assert ev.read_bytes()[:2] == b"\x1f\x8b"
        with gzip.open(ev, "rt") as fh:
            assert json.loads(fh.readline())["event"] == "run_meta"
        assert main(["inspect", str(ev)]) == 0
        out = capsys.readouterr().out
        assert "== event log: ra / adaptive" in out
        assert "round trips per thrashing block" in out


def _archived_id(out: str) -> str:
    import re

    match = re.search(r"\[archived as ([0-9a-f]+)", out)
    assert match, f"no archive line in output: {out!r}"
    return match.group(1)


class TestArchiveWorkflow:
    def test_archive_diff_round_trip(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        ids = []
        for seed in ("0", "1"):
            assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                         "--seed", seed, "--archive", "--runs", runs]) == 0
            ids.append(_archived_id(capsys.readouterr().out))
        assert len(set(ids)) == 2

        assert main(["runs", "--runs", runs]) == 0
        listing = capsys.readouterr().out
        assert all(i in listing for i in ids)

        assert main(["diff", ids[0], ids[1], "--runs", runs]) == 0
        out = capsys.readouterr().out
        assert "== run diff ==" in out
        assert "migrated_blocks" in out and "evicted_blocks" in out
        assert "td trajectory per allocation" in out

        assert main(["diff", ids[0][:6], ids[1][:6], "--runs", runs,
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["config_changes"]["seed"] == {"a": 0, "b": 1}
        assert payload["events"]["td_trajectories"]

    def test_rerun_lands_in_the_same_slot(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        ids = []
        for _ in range(2):
            assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                         "--archive", "--runs", runs]) == 0
            ids.append(_archived_id(capsys.readouterr().out))
        assert ids[0] == ids[1]

    def test_diff_unknown_id_is_cli_error(self, tmp_path):
        with pytest.raises(SystemExit, match="repro diff"):
            main(["diff", "aaaa", "bbbb", "--runs",
                  str(tmp_path / "runs")])

    def test_timeline_export_is_valid(self, tmp_path, capsys):
        from repro.obs import validate_trace

        trace_path = tmp_path / "t.trace.json"
        assert main(["run", "ra", "--scale", "tiny", "--oversub", "1.5",
                     "--timeline", str(trace_path)]) == 0
        # Artifact notes go to stderr (stdout stays machine-readable).
        assert "[timeline" in capsys.readouterr().err
        trace = json.loads(trace_path.read_text())
        assert validate_trace(trace) == []
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "run" in names and "wave" in names
        assert any(n and n.startswith("wave ") for n in names)

    def test_sweep_archives_grid_cells(self, tmp_path, capsys):
        runs = str(tmp_path / "runs")
        assert main(["sweep", "ra", "--scale", "tiny",
                     "--levels", "1.25,1.5", "--policies", "adaptive",
                     "--archive", "--runs", runs]) == 0
        assert "cells archived" in capsys.readouterr().out

        from repro.obs.store import RunStore

        manifests = RunStore(runs).list()
        assert len(manifests) == 2
        assert {m.kind for m in manifests} == {"grid-cell"}
        assert len({m.sweep_id for m in manifests}) == 1
        assert {m.oversubscription for m in manifests} == {1.25, 1.5}
