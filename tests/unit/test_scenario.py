"""Unit tests for the scenario-config subsystem (schema/loader/compile)."""

import pytest

from repro.analysis.parallel import GridCell
from repro.config import MigrationPolicy, ServeConfig, SimulationConfig
from repro.scenario import (SCHEMA, ScenarioError, build_cell,
                            build_multigpu_spec, build_serve_config,
                            build_sim_config, check, compile_check,
                            deep_merge, expand, is_base, load_directory,
                            load_scenario, scenario_files, validate)
from repro.scenario.schema import key_reference

yaml = pytest.importorskip("yaml")


def write(path, text):
    path.write_text(text)
    return path


class TestDeepMerge:
    def test_child_scalar_wins(self):
        assert deep_merge({"a": 1}, {"a": 2}) == {"a": 2}

    def test_nested_mappings_merge_key_by_key(self):
        base = {"policy": {"variant": "adaptive", "static_threshold": 8}}
        child = {"policy": {"static_threshold": 16}}
        assert deep_merge(base, child) == {
            "policy": {"variant": "adaptive", "static_threshold": 16}}

    def test_lists_replace_wholesale(self):
        base = {"serve": {"workload_mix": ["ra", "bfs"]}}
        child = {"serve": {"workload_mix": ["sssp"]}}
        merged = deep_merge(base, child)
        assert merged["serve"]["workload_mix"] == ["sssp"]

    def test_explicit_null_overrides(self):
        assert deep_merge({"seed": 3}, {"seed": None}) == {"seed": None}

    def test_inputs_not_mutated(self):
        base = {"policy": {"variant": "adaptive"}}
        child = {"policy": {"variant": "always"}}
        deep_merge(base, child)
        assert base["policy"]["variant"] == "adaptive"


class TestInheritance:
    def test_single_base(self, tmp_path):
        write(tmp_path / "_base.yaml", "scale: tiny\nworkload: ra\n")
        path = write(tmp_path / "child.yaml",
                     "inherits: _base\noversubscription: 1.5\n")
        data = load_scenario(path)
        assert data["scale"] == "tiny"
        assert data["oversubscription"] == 1.5
        assert data["name"] == "child"
        assert "inherits" not in data

    def test_chain_resolves_recursively(self, tmp_path):
        write(tmp_path / "a.yaml", "workload: ra\nseed: 1\n")
        write(tmp_path / "b.yaml", "inherits: a\nscale: tiny\n")
        path = write(tmp_path / "c.yaml", "inherits: b\nseed: 2\n")
        data = load_scenario(path)
        assert data["workload"] == "ra"
        assert data["scale"] == "tiny"
        assert data["seed"] == 2

    def test_multiple_bases_later_wins(self, tmp_path):
        write(tmp_path / "a.yaml", "workload: ra\nscale: tiny\n")
        write(tmp_path / "b.yaml", "scale: small\n")
        path = write(tmp_path / "c.yaml", "inherits: [a, b]\n")
        assert load_scenario(path)["scale"] == "small"

    def test_child_beats_every_base(self, tmp_path):
        write(tmp_path / "a.yaml", "workload: ra\nscale: tiny\n")
        write(tmp_path / "b.yaml", "scale: small\n")
        path = write(tmp_path / "c.yaml",
                     "inherits: [a, b]\nscale: medium\n")
        assert load_scenario(path)["scale"] == "medium"

    def test_cycle_rejected_with_chain(self, tmp_path):
        write(tmp_path / "a.yaml", "inherits: b\n")
        write(tmp_path / "b.yaml", "inherits: a\n")
        with pytest.raises(ScenarioError, match="cycle.*a.yaml"):
            load_scenario(tmp_path / "a.yaml")

    def test_self_cycle_rejected(self, tmp_path):
        path = write(tmp_path / "a.yaml", "inherits: a\n")
        with pytest.raises(ScenarioError, match="cycle"):
            load_scenario(path)

    def test_missing_base_lists_candidates(self, tmp_path):
        path = write(tmp_path / "a.yaml", "inherits: nosuch\n")
        with pytest.raises(ScenarioError, match="cannot find base 'nosuch'"):
            load_scenario(path)

    def test_suffix_optional(self, tmp_path):
        write(tmp_path / "base.yml", "workload: ra\n")
        path = write(tmp_path / "a.yaml", "inherits: base\nscale: tiny\n")
        assert load_scenario(path)["workload"] == "ra"

    def test_bad_inherits_type_rejected(self, tmp_path):
        path = write(tmp_path / "a.yaml", "inherits: {x: 1}\n")
        with pytest.raises(ScenarioError, match="name or list of names"):
            load_scenario(path)


class TestSchema:
    def test_unknown_key_suggested(self):
        errors = check({"name": "x", "workload": "ra", "oversubscripton": 2})
        assert any("oversubscripton" in e and "oversubscription" in e
                   for e in errors)

    def test_wrong_type_reported(self):
        errors = check({"name": "x", "workload": "ra", "seed": "zero"})
        assert any("seed" in e for e in errors)

    def test_bad_choice_reported(self):
        errors = check({"name": "x", "workload": "ra",
                        "policy": {"variant": "sometimes"}})
        assert any("sometimes" in e for e in errors)

    def test_all_errors_collected_at_once(self):
        errors = check({"name": "x", "workload": "nosuch", "seed": "zero",
                        "bogus": 1})
        assert len(errors) >= 3

    def test_workload_required_for_run(self):
        errors = check({"name": "x", "mode": "run"})
        assert any("workload" in e for e in errors)

    def test_serve_needs_no_workload(self):
        assert check({"name": "x", "mode": "serve"}) == []

    def test_sweep_forbidden_in_run_mode(self):
        errors = check({"name": "x", "mode": "run", "workload": "ra",
                        "sweep": {"seed": [0, 1]}})
        assert any("sweep" in e for e in errors)

    def test_non_sweepable_axis_rejected(self):
        errors = check({"name": "x", "mode": "sweep", "workload": "ra",
                        "sweep": {"serve.workload_mix": [["ra"]]}})
        assert any("workload_mix" in e for e in errors)

    def test_validate_raises_with_source(self):
        with pytest.raises(ScenarioError, match="bad.yaml"):
            validate({"name": "x", "bogus": 1}, source="bad.yaml")

    def test_key_reference_covers_schema(self):
        assert [k.path for k in key_reference()] == list(SCHEMA)


class TestExpansion:
    def test_unswept_scenario_is_single_variant(self):
        variants = expand({"name": "s", "workload": "ra"})
        assert len(variants) == 1
        assert variants[0].label == "s"
        assert variants[0].coords == {}

    def test_first_axis_outermost(self):
        variants = expand({"name": "s", "workload": "ra",
                           "mode": "sweep",
                           "sweep": {"policy.variant": ["disabled",
                                                        "adaptive"],
                                     "oversubscription": [1.1, 1.25]}})
        coords = [v.coords for v in variants]
        assert coords == [
            {"policy.variant": "disabled", "oversubscription": 1.1},
            {"policy.variant": "disabled", "oversubscription": 1.25},
            {"policy.variant": "adaptive", "oversubscription": 1.1},
            {"policy.variant": "adaptive", "oversubscription": 1.25},
        ]

    def test_labels_carry_coordinates(self):
        variants = expand({"name": "s", "workload": "ra", "mode": "sweep",
                           "sweep": {"seed": [0, 1]}})
        assert [v.label for v in variants] == ["s[seed=0]", "s[seed=1]"]

    def test_expansion_deterministic(self):
        scenario = {"name": "s", "workload": "ra", "mode": "sweep",
                    "sweep": {"seed": [0, 1], "oversubscription": [1.1]}}
        assert expand(scenario) == expand(scenario)

    def test_sweep_key_removed_from_variant_data(self):
        variants = expand({"name": "s", "workload": "ra", "mode": "sweep",
                           "sweep": {"seed": [0]}})
        assert "sweep" not in variants[0].data
        assert variants[0].data["seed"] == 0


class TestCompile:
    def test_omitted_keys_build_default_cell(self):
        cell = build_cell({"name": "s", "workload": "ra"})
        assert cell == GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25)

    def test_yaml_ints_coerced_to_cell_floats(self):
        cell = build_cell({"name": "s", "workload": "ra",
                           "oversubscription": 1})
        assert cell.oversubscription == 1.0
        assert isinstance(cell.oversubscription, float)

    def test_missing_workload_raises(self):
        with pytest.raises(ScenarioError, match="workload is unset"):
            build_cell({"name": "s"})

    def test_serve_defaults(self):
        cfg = build_serve_config({"name": "s", "mode": "serve"})
        assert cfg == ServeConfig().validate()

    def test_serve_overrides_and_mix_tuple(self):
        cfg = build_serve_config({"name": "s", "mode": "serve", "seed": 7,
                                  "serve": {"tenants": 3,
                                            "workload_mix": ["ra", "bfs"]}})
        assert cfg.tenants == 3
        assert cfg.workload_mix == ("ra", "bfs")
        assert cfg.seed == 7

    def test_serve_live_keys_flow_through(self):
        cfg = build_serve_config(
            {"name": "s", "mode": "serve",
             "serve": {"live_admission": True,
                       "live_thrash_threshold": 0.1, "window_ms": 2.0}})
        assert cfg.live_admission
        assert cfg.live_thrash_threshold == 0.1
        assert cfg.window_ms == 2.0

    def test_slo_section_validates(self):
        from repro.scenario import check
        assert check({"name": "s", "mode": "serve",
                      "slo": {"p99_latency_us": 300.0,
                              "max_shed_rate": 0.1}}) == []
        errors = check({"name": "s", "mode": "serve",
                        "slo": {"p99_latencyus": 300.0}})
        assert any("p99_latency" in e for e in errors)

    def test_build_slo_config(self):
        from repro.scenario import build_slo_config
        slo = build_slo_config(
            {"name": "s", "mode": "serve",
             "slo": {"p99_latency_us": 300.0, "latency_attainment": 0.9,
                     "fast_windows": 2, "slow_windows": 6}})
        assert slo is not None and slo.enabled
        assert slo.p99_latency_us == 300.0
        assert slo.latency_attainment == 0.9
        assert (slo.fast_windows, slo.slow_windows) == (2, 6)

    def test_build_slo_config_none_without_objectives(self):
        from repro.scenario import build_slo_config
        assert build_slo_config({"name": "s", "mode": "serve"}) is None
        # Tuning knobs alone (no objective) also stay inert.
        assert build_slo_config({"name": "s", "mode": "serve",
                                 "slo": {"fast_windows": 2}}) is None

    def test_build_slo_config_rejects_invalid(self):
        from repro.scenario import build_slo_config
        with pytest.raises(ValueError):
            build_slo_config({"name": "s", "mode": "serve",
                              "slo": {"p99_latency_us": -1.0}})

    def test_sim_config_matches_hand_built(self):
        data = {"name": "s", "workload": "ra",
                "policy": {"variant": "always", "static_threshold": 16}}
        cfg = build_sim_config(data)
        expected = SimulationConfig(seed=0).with_policy(
            MigrationPolicy.ALWAYS, static_threshold=16,
            migration_penalty=8).validate()
        assert cfg == expected

    def test_multigpu_spec(self):
        spec = build_multigpu_spec({"name": "s", "workload": "ra",
                                    "mode": "multigpu",
                                    "multigpu": {"gpus": 4,
                                                 "partition": "span",
                                                 "throttle": 0.5}})
        assert (spec.gpus, spec.partition, spec.throttle) == (4, "span", 0.5)

    def test_compile_check_reports_variant_label(self):
        scenario = {"name": "s", "mode": "multigpu", "workload": "ra",
                    "sweep": {"multigpu.throttle": [0.5, 0.0]}}
        with pytest.raises(ScenarioError, match=r"s\[multigpu.throttle=0.0\]"):
            compile_check(scenario)


class TestDirectory:
    def test_bases_skipped_and_sorted(self, tmp_path):
        write(tmp_path / "_base.yaml", "scale: tiny\n")
        write(tmp_path / "b.yaml", "inherits: _base\nworkload: ra\n")
        write(tmp_path / "a.yaml", "workload: bfs\n")
        files = scenario_files(tmp_path)
        assert [f.name for f in files] == ["a.yaml", "b.yaml"]
        assert is_base(tmp_path / "_base.yaml")

    def test_empty_directory_rejected(self, tmp_path):
        write(tmp_path / "_base.yaml", "scale: tiny\n")
        with pytest.raises(ScenarioError, match="no scenario files"):
            scenario_files(tmp_path)

    def test_load_directory_resolves_against_root(self, tmp_path):
        write(tmp_path / "_base.yaml", "scale: tiny\n")
        write(tmp_path / "a.yaml", "inherits: _base\nworkload: ra\n")
        (data,) = load_directory(tmp_path)
        assert data["scale"] == "tiny"


class TestShippedConfigs:
    """Every scenario in configs/ resolves, validates, and compiles."""

    def configs_root(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parents[2] / "configs"
        assert root.is_dir(), "configs/ library missing"
        return root

    def all_scenario_paths(self):
        root = self.configs_root()
        dirs = [root] + sorted(d for d in root.iterdir() if d.is_dir())
        return [(d, p) for d in dirs for p in scenario_files(d)]

    def test_library_is_nonempty(self):
        assert len(self.all_scenario_paths()) >= 10

    def test_every_scenario_compiles(self):
        for root, path in self.all_scenario_paths():
            scenario = load_scenario(path, root=root)
            labels = compile_check(scenario)
            assert labels, path

    def test_section8_throttle_sweep_covers_knob(self):
        root = self.configs_root() / "section8_throttle"
        scenario = load_scenario(root / "throttle_sweep.yaml", root=root)
        assert scenario["mode"] == "multigpu"
        assert "multigpu.throttle" in scenario["sweep"]
        assert len(compile_check(scenario)) == 9
