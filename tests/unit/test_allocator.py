"""Unit tests for the VA space and managed allocations."""

import numpy as np
import pytest

from repro.memory import layout
from repro.memory.allocator import VirtualAddressSpace


class TestMallocManaged:
    def test_rounds_to_blocks(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 100)
        assert a.rounded_bytes == layout.BASIC_BLOCK_SIZE
        assert a.num_pages == layout.PAGES_PER_BLOCK

    def test_paper_chunking_example(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 4 * 1024 * 1024 + 168 * 1024)
        assert [c.size_bytes for c in a.chunks] == \
            [layout.CHUNK_SIZE, layout.CHUNK_SIZE, 256 * 1024]
        # Chunks tile the allocation contiguously.
        cursor = a.first_block
        for c in a.chunks:
            assert c.first_block == cursor
            cursor = c.last_block

    def test_allocations_chunk_aligned_and_disjoint(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 3 * layout.BASIC_BLOCK_SIZE)
        b = vas.malloc_managed("b", layout.CHUNK_SIZE + 1)
        assert a.first_page % layout.PAGES_PER_CHUNK == 0
        assert b.first_page % layout.PAGES_PER_CHUNK == 0
        assert b.first_page >= a.last_page

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            VirtualAddressSpace().malloc_managed("x", 0)

    def test_footprint_sums_rounded(self):
        vas = VirtualAddressSpace()
        vas.malloc_managed("a", 100)
        vas.malloc_managed("b", layout.CHUNK_SIZE)
        assert vas.footprint_bytes == layout.BASIC_BLOCK_SIZE + layout.CHUNK_SIZE

    def test_chunk_ids_monotonic(self):
        vas = VirtualAddressSpace()
        vas.malloc_managed("a", 5 * layout.CHUNK_SIZE)
        vas.malloc_managed("b", layout.CHUNK_SIZE)
        assert [c.chunk_id for c in vas.chunks] == list(range(6))


class TestLookup:
    def test_find_allocation(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.CHUNK_SIZE)
        b = vas.malloc_managed("b", layout.CHUNK_SIZE)
        assert vas.find_allocation(a.first_page) is a
        assert vas.find_allocation(b.last_page - 1) is b

    def test_find_allocation_gap_raises(self):
        vas = VirtualAddressSpace()
        vas.malloc_managed("a", layout.BASIC_BLOCK_SIZE)  # leaves a gap
        vas.malloc_managed("b", layout.BASIC_BLOCK_SIZE)
        with pytest.raises(KeyError):
            vas.find_allocation(layout.PAGES_PER_BLOCK + 1)

    def test_block_alloc_ids(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.BASIC_BLOCK_SIZE)
        ids = vas.block_alloc_ids()
        assert ids[a.first_block] == a.alloc_id
        # Alignment gap blocks are unowned.
        assert np.all(ids[a.first_block + 1:] == -1) or ids.size == 1

    def test_block_read_only(self):
        vas = VirtualAddressSpace()
        vas.malloc_managed("rw", layout.CHUNK_SIZE)
        ro = vas.malloc_managed("ro", layout.CHUNK_SIZE, read_only=True)
        flags = vas.block_read_only()
        assert not flags[0]
        assert flags[ro.first_block]


class TestAllocationAddressing:
    def test_page_of_offset(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.CHUNK_SIZE)
        assert a.page(0) == a.first_page
        assert a.page(layout.PAGE_SIZE) == a.first_page + 1

    def test_page_rejects_out_of_range(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.BASIC_BLOCK_SIZE)
        with pytest.raises(IndexError):
            a.page(a.rounded_bytes)

    def test_pages_of_vectorized(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.CHUNK_SIZE)
        offs = np.array([0, layout.PAGE_SIZE, 3 * layout.PAGE_SIZE])
        assert list(a.pages_of(offs)) == \
            [a.first_page, a.first_page + 1, a.first_page + 3]

    def test_pages_of_rejects_out_of_range(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.BASIC_BLOCK_SIZE)
        with pytest.raises(IndexError):
            a.pages_of(np.array([a.rounded_bytes]))

    def test_page_range_full(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.BASIC_BLOCK_SIZE)
        pages = a.page_range()
        assert pages[0] == a.first_page
        assert pages.size == layout.PAGES_PER_BLOCK

    def test_page_range_partial(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.CHUNK_SIZE)
        pages = a.page_range(layout.PAGE_SIZE, 3 * layout.PAGE_SIZE)
        assert list(pages) == [a.first_page + 1, a.first_page + 2]

    def test_page_range_invalid(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", layout.BASIC_BLOCK_SIZE)
        with pytest.raises(IndexError):
            a.page_range(10, 5)
