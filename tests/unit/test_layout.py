"""Unit tests for page/block/chunk geometry."""

import pytest

from repro.memory import layout


class TestConstants:
    def test_basic_sizes(self):
        assert layout.PAGE_SIZE == 4096
        assert layout.BASIC_BLOCK_SIZE == 64 * 1024
        assert layout.CHUNK_SIZE == 2 * 1024 * 1024

    def test_derived_ratios(self):
        assert layout.PAGES_PER_BLOCK == 16
        assert layout.BLOCKS_PER_CHUNK == 32
        assert layout.PAGES_PER_CHUNK == 512

    def test_shifts_match_ratios(self):
        assert 1 << layout.PAGE_SHIFT == layout.PAGE_SIZE
        assert 1 << layout.BLOCK_SHIFT == layout.PAGES_PER_BLOCK
        assert 1 << layout.CHUNK_BLOCK_SHIFT == layout.BLOCKS_PER_CHUNK


class TestConversions:
    def test_pages_to_bytes_roundtrip(self):
        assert layout.pages_to_bytes(3) == 12288
        assert layout.bytes_to_pages(12288) == 3

    def test_bytes_to_pages_rounds_up(self):
        assert layout.bytes_to_pages(1) == 1
        assert layout.bytes_to_pages(4097) == 2

    def test_blocks_to_bytes(self):
        assert layout.blocks_to_bytes(2) == 128 * 1024

    def test_bytes_to_blocks_rounds_up(self):
        assert layout.bytes_to_blocks(1) == 1
        assert layout.bytes_to_blocks(64 * 1024 + 1) == 2

    def test_page_block_mapping(self):
        assert layout.page_to_block(0) == 0
        assert layout.page_to_block(15) == 0
        assert layout.page_to_block(16) == 1
        assert layout.block_to_first_page(2) == 32


class TestRounding:
    def test_round_up_small_is_one_block(self):
        assert layout.round_up_pow2_blocks(1) == layout.BASIC_BLOCK_SIZE

    def test_round_up_exact_power(self):
        assert layout.round_up_pow2_blocks(128 * 1024) == 128 * 1024

    def test_round_up_to_next_power(self):
        # 3 blocks -> 4 blocks
        assert layout.round_up_pow2_blocks(3 * 64 * 1024) == 4 * 64 * 1024

    def test_round_up_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            layout.round_up_pow2_blocks(0)


class TestChunkSplit:
    def test_paper_example(self):
        """4MB + 168KB -> two 2MB chunks + one 256KB chunk (Section II-B)."""
        sizes = layout.split_into_chunks(4 * 1024 * 1024 + 168 * 1024)
        assert sizes == [layout.CHUNK_SIZE, layout.CHUNK_SIZE, 256 * 1024]

    def test_exact_chunks(self):
        assert layout.split_into_chunks(4 * layout.CHUNK_SIZE) == \
            [layout.CHUNK_SIZE] * 4

    def test_small_allocation_single_chunk(self):
        assert layout.split_into_chunks(100) == [layout.BASIC_BLOCK_SIZE]

    def test_remainder_is_power_of_two_blocks(self):
        for extra_kb in (1, 65, 130, 1025):
            sizes = layout.split_into_chunks(
                layout.CHUNK_SIZE + extra_kb * 1024)
            rem_blocks = sizes[-1] // layout.BASIC_BLOCK_SIZE
            assert rem_blocks & (rem_blocks - 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            layout.split_into_chunks(0)
