"""Documentation hygiene: links resolve, CLI examples parse.

Wraps ``tools/check_docs.py`` (the CI ``docs`` job) so a stale flag or
broken link fails the test suite too, and pins that the checker itself
actually detects problems.
"""

import importlib.util
from pathlib import Path

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parents[2]

spec = importlib.util.spec_from_file_location(
    "check_docs", REPO_ROOT / "tools" / "check_docs.py")
check_docs = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_docs)


class TestRepositoryDocs:
    def test_all_docs_clean(self):
        errors = check_docs.run_checks(REPO_ROOT)
        assert errors == []

    def test_checks_cover_the_doc_set(self):
        names = {p.name for p in check_docs.doc_files(REPO_ROOT)}
        assert {"README.md", "EXPERIMENTS.md", "architecture.md",
                "observability.md"} <= names


class TestCheckerDetects:
    def test_broken_link_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](nope/absent.md)\n")
        errors = check_docs.check_links(doc, tmp_path)
        assert len(errors) == 1 and "absent.md" in errors[0]

    def test_external_links_skipped(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("[a](https://example.com) [b](#anchor)\n")
        assert check_docs.check_links(doc, tmp_path) == []

    def test_bad_invocation_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\nrepro run ra --no-such-flag\n```\n")
        errors = check_docs.check_cli_invocations(doc, tmp_path,
                                                  build_parser)
        assert len(errors) == 1 and "--no-such-flag" in errors[0]

    def test_good_invocation_passes(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\n"
                       "PYTHONPATH=src python -m repro run ra --oversub 1.5"
                       "  # comment\n"
                       "repro inspect ev.jsonl --top 3\n"
                       "```\n")
        assert check_docs.check_cli_invocations(doc, tmp_path,
                                                build_parser) == []

    def test_non_repro_lines_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\npip install -e .\nmake lint\n```\n")
        assert check_docs.check_cli_invocations(doc, tmp_path,
                                                build_parser) == []

    def test_missing_example_script_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```bash\npython examples/ghost.py\n```\n")
        errors = check_docs.check_example_scripts(doc, tmp_path)
        assert len(errors) == 1 and "ghost.py" in errors[0]


class TestYamlBlocks:
    def test_invalid_scenario_block_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```yaml\nworkload: ra\nbogus_key: 1\n```\n")
        errors = check_docs.check_yaml_blocks(doc, tmp_path)
        assert len(errors) == 1 and "bogus_key" in errors[0]

    def test_valid_scenario_block_passes(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```yaml\nworkload: ra\noversubscription: 1.4\n```\n")
        assert check_docs.check_yaml_blocks(doc, tmp_path) == []

    def test_broken_inherits_target_detected(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```yaml\ninherits: no_such_base\nworkload: ra\n```\n")
        errors = check_docs.check_yaml_blocks(doc, tmp_path)
        assert len(errors) == 1 and "no_such_base" in errors[0]

    def test_inherits_resolves_against_configs_library(self, tmp_path):
        (tmp_path / "configs").mkdir()
        (tmp_path / "configs" / "base.yaml").write_text(
            "workload: ra\nscale: tiny\n")
        doc = tmp_path / "doc.md"
        doc.write_text("```yaml\ninherits: base\nseed: 1\n```\n")
        assert check_docs.check_yaml_blocks(doc, tmp_path) == []

    def test_skip_marker_exempts_block(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```yaml\n# not-a-scenario\nanything: goes\n```\n")
        assert check_docs.check_yaml_blocks(doc, tmp_path) == []

    def test_non_yaml_blocks_ignored(self, tmp_path):
        doc = tmp_path / "doc.md"
        doc.write_text("```json\n{\"bogus\": 1}\n```\n")
        assert check_docs.check_yaml_blocks(doc, tmp_path) == []


class TestKeyReference:
    def test_repo_table_covers_schema(self):
        assert check_docs.check_key_reference(REPO_ROOT) == []

    def test_missing_key_detected(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        (docs / "scenarios.md").write_text(
            "## Key reference\n\n| key |\n|---|\n| `workload` |\n")
        errors = check_docs.check_key_reference(tmp_path)
        assert any("missing" in e for e in errors)

    def test_stale_row_detected(self, tmp_path):
        docs = tmp_path / "docs"
        docs.mkdir()
        from repro.scenario import SCHEMA
        rows = "\n".join(f"| `{k}` |" for k in SCHEMA)
        (docs / "scenarios.md").write_text(
            f"## Key reference\n\n| key |\n|---|\n{rows}\n"
            "| `policy.retired_knob` |\n")
        errors = check_docs.check_key_reference(tmp_path)
        assert errors == ["docs/scenarios.md: key reference row "
                          "`policy.retired_knob` is not in the schema"]
