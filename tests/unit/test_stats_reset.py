"""Regression tests: StatsCollector reuse across runs.

The collector accumulates by design (multi-kernel workloads), but that
meant reusing one instance across repeated Simulator/engine runs
silently aggregated per-kernel stats, histograms, and traces across the
runs.  ``reset()`` restores a fresh-instance view between runs.
"""

import numpy as np

from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import MB
from repro.stats.collector import StatsCollector


def _vas():
    vas = VirtualAddressSpace()
    vas.malloc_managed("a", 2 * MB)
    return vas


def _feed_run(collector):
    """Simulate what one engine run feeds the collector."""
    pages = np.array([0, 1, 2], dtype=np.int64)
    writes = np.array([False, True, False])
    collector.on_wave("k", 0, 0.0, pages, writes)
    collector.on_timeline(10.0, 4, 8, 2, 1)
    collector.on_kernel_end("k", 100.0, 3)


class TestReset:
    def test_reuse_without_reset_accumulates(self):
        c = StatsCollector(_vas(), histogram=True, trace=True, timeline=True)
        _feed_run(c)
        _feed_run(c)
        # documented accumulation semantics: everything doubles up
        assert c.kernels["k"].launches == 2
        assert c.kernels["k"].cycles == 200.0
        assert int(c.page_reads.sum()) == 4
        assert len(c.trace) == 2 and len(c.timeline) == 2

    def test_reset_restores_fresh_instance_behaviour(self):
        c = StatsCollector(_vas(), histogram=True, trace=True, timeline=True)
        _feed_run(c)
        c.reset()
        _feed_run(c)

        fresh = StatsCollector(_vas(), histogram=True, trace=True,
                               timeline=True)
        _feed_run(fresh)

        assert c.kernels["k"].launches == fresh.kernels["k"].launches == 1
        assert c.kernels["k"].cycles == fresh.kernels["k"].cycles
        assert np.array_equal(c.page_reads, fresh.page_reads)
        assert np.array_equal(c.page_writes, fresh.page_writes)
        assert len(c.trace) == len(fresh.trace) == 1
        assert len(c.timeline) == len(fresh.timeline) == 1

    def test_reset_keeps_switches_and_vas(self):
        vas = _vas()
        c = StatsCollector(vas, histogram=True)
        _feed_run(c)
        c.reset()
        assert c.histogram_enabled and c.vas is vas
        assert int(c.page_reads.sum()) == 0

    def test_reset_with_histogram_disabled(self):
        c = StatsCollector(_vas())
        c.on_kernel_end("k", 1.0, 1)
        c.reset()  # must not touch the absent histogram arrays
        assert c.page_reads is None and not c.kernels
