"""Unit tests for the pressure timeline and chart rendering."""

import numpy as np
import pytest

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.analysis.experiments import SeriesResult
from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import CHUNK_SIZE
from repro.stats.collector import StatsCollector, TimelineSample
from repro.workloads import make_workload

from tests.conftest import StreamWorkload


@pytest.fixture
def vas():
    v = VirtualAddressSpace()
    v.malloc_managed("a", CHUNK_SIZE)
    return v


class TestTimelineSample:
    def test_occupancy(self):
        s = TimelineSample(cycle=1.0, resident_blocks=8,
                           capacity_blocks=32, cumulative_faults=0,
                           cumulative_thrash=0)
        assert s.occupancy == pytest.approx(0.25)


class TestCollectorTimeline:
    def test_disabled_by_default(self, vas):
        c = StatsCollector(vas)
        c.on_timeline(1.0, 1, 2, 0, 0)
        assert c.timeline == []

    def test_records_when_enabled(self, vas):
        c = StatsCollector(vas, timeline=True)
        c.on_timeline(1.0, 1, 2, 3, 4)
        c.on_timeline(2.0, 2, 2, 5, 6)
        assert len(c.timeline) == 2
        assert c.timeline[1].cumulative_thrash == 6

    def test_render_empty(self, vas):
        c = StatsCollector(vas, timeline=True)
        assert "no timeline" in c.render_timeline()

    def test_render_shape(self, vas):
        c = StatsCollector(vas, timeline=True)
        for i in range(10):
            c.on_timeline(float(i), i, 10, 0, 0)
        txt = c.render_timeline(width=20, height=4)
        assert "#" in txt
        assert len(txt.splitlines()) == 5  # title + 4 rows


class TestEndToEndTimeline:
    def test_simulation_produces_samples(self):
        cfg = SimulationConfig(seed=0, collect_timeline=True)
        r = Simulator(cfg).run(StreamWorkload(size_mb=4),
                               oversubscription=1.0)
        assert len(r.stats.timeline) > 0
        # Cycles are nondecreasing; occupancy within [0, 1].
        cycles = [s.cycle for s in r.stats.timeline]
        assert cycles == sorted(cycles)
        assert all(0.0 <= s.occupancy <= 1.0 for s in r.stats.timeline)

    def test_occupancy_saturates_under_oversubscription(self):
        cfg = SimulationConfig(seed=0, collect_timeline=True).with_policy(
            MigrationPolicy.DISABLED)
        r = Simulator(cfg).run(make_workload("ra", "tiny"),
                               oversubscription=1.25)
        # 2MB-granular eviction frees whole chunks, so the *peak* hits
        # capacity even though individual samples dip below it.
        assert max(s.occupancy for s in r.stats.timeline) > 0.95
        assert r.stats.timeline[-1].cumulative_thrash > 0


class TestRenderChart:
    def test_grouped_bars_with_paper_refs(self):
        res = SeriesResult(
            "Figure X", "test",
            measured={"always": {"ra": 0.5}, "adaptive": {"ra": 0.25}},
            paper={"adaptive": {"ra": 0.22}})
        txt = res.render_chart(width=20)
        assert "ra" in txt
        assert "(paper 0.22)" in txt
        assert txt.count("|") == 2
