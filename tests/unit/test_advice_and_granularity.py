"""Unit tests for placement advice and 64KB-granular eviction."""

import numpy as np
import pytest

from repro.config import EvictionGranularity, MigrationPolicy, SimulationConfig
from repro.memory.advice import Advice
from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import MB, PAGES_PER_BLOCK
from repro.uvm.driver import UvmDriver


def driver_for(vas, policy=MigrationPolicy.DISABLED, capacity_mb=16,
               granularity=EvictionGranularity.CHUNK_2MB):
    cfg = SimulationConfig().with_policy(policy)
    cfg = cfg.with_device_capacity(int(capacity_mb * MB))
    cfg = cfg.with_eviction_granularity(granularity)
    return UvmDriver(vas, cfg)


class TestAdvice:
    def test_enum_bias(self):
        assert not Advice.NONE.host_resident_bias
        assert Advice.PINNED_HOST.host_resident_bias
        assert Advice.PREFERRED_HOST.host_resident_bias

    def test_allocation_carries_advice(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 2 * MB, advice=Advice.PINNED_HOST)
        assert a.advice is Advice.PINNED_HOST
        assert vas.block_advice(Advice.PINNED_HOST)[a.first_block]

    def test_pinned_host_never_migrates(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 4 * MB, advice=Advice.PINNED_HOST)
        drv = driver_for(vas)
        out = drv.process_wave(a.page_range(),
                               np.zeros(a.num_pages, dtype=bool))
        assert out.fault_migrations == 0
        assert out.n_remote == a.num_pages
        assert drv.device.used_blocks == 0

    def test_pinned_host_remote_writes_allowed(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 2 * MB, advice=Advice.PINNED_HOST)
        drv = driver_for(vas)
        out = drv.process_wave(a.page_range(),
                               np.ones(a.num_pages, dtype=bool))
        assert out.n_remote == a.num_pages
        assert out.writeback_blocks == 0  # host copy updated in place

    def test_preferred_host_delays_migration(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 2 * MB, advice=Advice.PREFERRED_HOST)
        drv = driver_for(vas)  # DISABLED policy would migrate instantly
        page = np.array([a.first_page])
        for _ in range(7):   # ts - 1 accesses stay remote
            out = drv.process_wave(page, np.array([False]))
            assert out.fault_migrations == 0
        out = drv.process_wave(page, np.array([False]))
        assert out.fault_migrations == 1

    def test_unadvised_allocation_unaffected(self):
        vas = VirtualAddressSpace()
        vas.malloc_managed("pinned", 2 * MB, advice=Advice.PINNED_HOST)
        b = vas.malloc_managed("plain", 2 * MB)
        drv = driver_for(vas)
        out = drv.process_wave(np.array([b.first_page]), np.array([False]))
        assert out.fault_migrations == 1


class TestBlockGranularEviction:
    def _flood(self, drv, alloc, write=True):
        pages = alloc.page_range()
        drv.process_wave(pages, np.full(pages.shape, write, dtype=bool))

    def test_evicts_only_what_is_needed(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 4 * MB)
        drv = driver_for(vas, capacity_mb=2,
                         granularity=EvictionGranularity.BLOCK_64KB)
        self._flood(drv, a)
        # Device stays exactly full: block eviction frees single frames.
        assert drv.device.used_blocks == drv.device.capacity_blocks
        drv.check_consistency()

    def test_partial_chunks_remain(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 4 * MB)
        drv = driver_for(vas, capacity_mb=2,
                         granularity=EvictionGranularity.BLOCK_64KB)
        self._flood(drv, a)
        # Re-touch one absent block: a single frame is reclaimed,
        # leaving its chunk partially resident (impossible with 2MB
        # granularity, where whole chunks are drained).
        absent = int(np.flatnonzero(~drv.residency.resident)[0])
        drv.process_wave(np.array([absent * PAGES_PER_BLOCK]),
                         np.array([False]))
        occ = drv.directory.occupancy
        assert np.any((occ > 0) & (occ < drv.directory.num_blocks))

    def test_tree_tracks_partial_eviction(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 4 * MB)
        drv = driver_for(vas, capacity_mb=2,
                         granularity=EvictionGranularity.BLOCK_64KB)
        self._flood(drv, a)
        for cid in range(drv.directory.num_chunks):
            drv.trees[cid].check_invariants()

    def test_coldest_blocks_evicted_first(self):
        # 6MB working set over 4MB capacity so victim selection has a
        # genuinely cold chunk to prefer over the hot one.
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 6 * MB)
        drv = driver_for(vas, MigrationPolicy.ADAPTIVE, capacity_mb=4,
                         granularity=EvictionGranularity.BLOCK_64KB)
        hot = np.array([a.first_page])
        # Make block 0 hot, then flood to force eviction.
        for _ in range(5):
            drv.process_wave(hot, np.array([False]),
                             counts=np.array([1000]))
        self._flood(drv, a, write=False)
        assert drv.residency.resident[a.first_block]

    def test_writebacks_counted(self):
        vas = VirtualAddressSpace()
        a = vas.malloc_managed("a", 4 * MB)
        drv = driver_for(vas, capacity_mb=2,
                         granularity=EvictionGranularity.BLOCK_64KB)
        self._flood(drv, a)
        assert drv.stats.totals.writeback_blocks > 0
        assert drv.stats.totals.evicted_blocks > 0
