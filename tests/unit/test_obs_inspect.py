"""Unit tests for event-log post-mortem analysis (``repro inspect``)."""

import json

from repro.obs import JsonlSink, MigrationDecision, RunMeta
from repro.obs.events import Eviction, FaultRetry
from repro.obs.inspect import (
    AllocationTrend,
    iter_events,
    render_summary,
    summarize,
)

META = RunMeta(workload="ra", policy="adaptive", seed=0, total_blocks=64,
               capacity_blocks=32,
               allocations=(("ra.a", 0, 32), ("ra.b", 32, 64)))


def _decisions():
    """A small synthetic run: block 5 thrashes, block 40 migrates once."""
    events = [META]
    for wave in range(4):
        events.append(MigrationDecision(wave=wave, block=5, threshold=wave + 1,
                                        counter=9, accesses=3, migrated=True))
    events.append(MigrationDecision(wave=1, block=40, threshold=2, counter=1,
                                    accesses=1, migrated=True))
    events.append(MigrationDecision(wave=2, block=41, threshold=4, counter=1,
                                    accesses=1, migrated=False))
    events.append(Eviction(wave=2, chunk=0, blocks=32, dirty_blocks=6,
                           whole_chunk=True))
    events.append(FaultRetry(wave=3, block=5, failures=2, degraded=True))
    return events


class TestSummarize:
    def test_counts_and_totals(self):
        s = summarize(_decisions())
        assert s.meta == META
        assert s.event_counts["migration_decision"] == 6
        assert s.evicted_blocks == 32
        assert s.writeback_blocks == 6
        assert s.fault_retries == 2
        assert s.degraded_migrations == 1

    def test_top_thrashing_attributes_allocation(self):
        s = summarize(_decisions())
        top = s.top_thrashing_blocks()
        assert len(top) == 1  # only block 5 migrated more than once
        assert top[0]["block"] == 5
        assert top[0]["allocation"] == "ra.a"
        assert top[0]["migrations"] == 4
        assert top[0]["round_trips"] == 3
        assert top[0]["last_threshold"] == 4

    def test_allocation_of_unknown_block(self):
        s = summarize(_decisions())
        assert s.allocation_of(40) == "ra.b"
        assert s.allocation_of(999) == "?"

    def test_from_jsonl_path(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlSink(path)
        for ev in _decisions():
            sink.write(ev)
        sink.close()
        s = summarize(path)
        assert s.event_counts == summarize(_decisions()).event_counts

    def test_iter_events_skips_blank_and_torn_lines(self, tmp_path):
        path = tmp_path / "e.jsonl"
        rows = [json.dumps(ev.as_dict()) for ev in _decisions()]
        text = rows[0] + "\n\n" + rows[1] + "\n" + rows[2][: len(rows[2]) // 2]
        path.write_text(text)
        events = list(iter_events(path))
        assert len(events) == 2  # torn tail and blank line dropped


class TestAllocationTrend:
    def test_trajectory_is_mean_per_bucket(self):
        t = AllocationTrend("a", 0, 32)
        for wave, td in ((0, 2), (0, 4), (1, 8)):
            t.observe(MigrationDecision(wave=wave, block=1, threshold=td,
                                        counter=0, accesses=1, migrated=True))
        traj = t.trajectory(buckets=2)
        assert traj == [3.0, 8.0]

    def test_sparkline_rises_with_threshold(self):
        t = AllocationTrend("a", 0, 32)
        for wave in range(8):
            t.observe(MigrationDecision(wave=wave, block=1,
                                        threshold=2 ** wave, counter=0,
                                        accesses=1, migrated=False))
        spark = t.sparkline()
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_empty_trend(self):
        t = AllocationTrend("a", 0, 32)
        assert t.trajectory() == [] and t.sparkline() == ""


class TestRender:
    def test_render_mentions_key_sections(self):
        text = render_summary(summarize(_decisions()))
        assert "ra / adaptive" in text
        assert "top thrashing blocks" in text
        assert "ra.a" in text and "ra.b" in text
        assert "threshold trajectory" in text

    def test_render_without_meta(self):
        events = [ev for ev in _decisions() if not isinstance(ev, RunMeta)]
        text = render_summary(summarize(events))
        assert "no run_meta header" in text
