"""Unit tests for event-log post-mortem analysis (``repro inspect``)."""

import json

from repro.obs import JsonlSink, MigrationDecision, RunMeta
from repro.obs.events import Eviction, FaultRetry
from repro.obs.inspect import (
    AllocationTrend,
    iter_events,
    render_summary,
    summarize,
)

META = RunMeta(workload="ra", policy="adaptive", seed=0, total_blocks=64,
               capacity_blocks=32,
               allocations=(("ra.a", 0, 32), ("ra.b", 32, 64)))


def _decisions():
    """A small synthetic run: block 5 thrashes, block 40 migrates once."""
    events = [META]
    for wave in range(4):
        events.append(MigrationDecision(wave=wave, block=5, threshold=wave + 1,
                                        counter=9, accesses=3, migrated=True))
    events.append(MigrationDecision(wave=1, block=40, threshold=2, counter=1,
                                    accesses=1, migrated=True))
    events.append(MigrationDecision(wave=2, block=41, threshold=4, counter=1,
                                    accesses=1, migrated=False))
    events.append(Eviction(wave=2, chunk=0, blocks=32, dirty_blocks=6,
                           whole_chunk=True))
    events.append(FaultRetry(wave=3, block=5, failures=2, degraded=True))
    return events


class TestSummarize:
    def test_counts_and_totals(self):
        s = summarize(_decisions())
        assert s.meta == META
        assert s.event_counts["migration_decision"] == 6
        assert s.evicted_blocks == 32
        assert s.writeback_blocks == 6
        assert s.fault_retries == 2
        assert s.degraded_migrations == 1

    def test_top_thrashing_attributes_allocation(self):
        s = summarize(_decisions())
        top = s.top_thrashing_blocks()
        assert len(top) == 1  # only block 5 migrated more than once
        assert top[0]["block"] == 5
        assert top[0]["allocation"] == "ra.a"
        assert top[0]["migrations"] == 4
        assert top[0]["round_trips"] == 3
        assert top[0]["last_threshold"] == 4

    def test_allocation_of_unknown_block(self):
        s = summarize(_decisions())
        assert s.allocation_of(40) == "ra.b"
        assert s.allocation_of(999) == "?"

    def test_from_jsonl_path(self, tmp_path):
        path = tmp_path / "e.jsonl"
        sink = JsonlSink(path)
        for ev in _decisions():
            sink.write(ev)
        sink.close()
        s = summarize(path)
        assert s.event_counts == summarize(_decisions()).event_counts

    def test_iter_events_skips_blank_and_torn_lines(self, tmp_path):
        path = tmp_path / "e.jsonl"
        rows = [json.dumps(ev.as_dict()) for ev in _decisions()]
        text = rows[0] + "\n\n" + rows[1] + "\n" + rows[2][: len(rows[2]) // 2]
        path.write_text(text)
        events = list(iter_events(path))
        assert len(events) == 2  # torn tail and blank line dropped


class TestAllocationTrend:
    def test_trajectory_is_mean_per_bucket(self):
        t = AllocationTrend("a", 0, 32)
        for wave, td in ((0, 2), (0, 4), (1, 8)):
            t.observe(MigrationDecision(wave=wave, block=1, threshold=td,
                                        counter=0, accesses=1, migrated=True))
        traj = t.trajectory(buckets=2)
        assert traj == [3.0, 8.0]

    def test_sparkline_rises_with_threshold(self):
        t = AllocationTrend("a", 0, 32)
        for wave in range(8):
            t.observe(MigrationDecision(wave=wave, block=1,
                                        threshold=2 ** wave, counter=0,
                                        accesses=1, migrated=False))
        spark = t.sparkline()
        assert spark[0] == "▁" and spark[-1] == "█"

    def test_empty_trend(self):
        t = AllocationTrend("a", 0, 32)
        assert t.trajectory() == [] and t.sparkline() == ""


def _telemetry_events():
    """A serve log slice exercising the live-telemetry event kinds."""
    from repro.obs.events import (AlertFired, SloAttainment, SloViolation,
                                  TelemetryWindow, TenantArrival,
                                  TenantComplete)
    return [
        META,
        TenantArrival(tenant=0, workload="ra", at_us=0.0,
                      footprint_mb=16.0),
        TelemetryWindow(tenant=0, start_us=0.0, window_us=5000.0,
                        waves=10, accesses=5120, mean_latency_us=90.0,
                        max_latency_us=350.0, bad_waves=3,
                        ewma_latency_us=96.5, thrash_rate=1.25),
        TelemetryWindow(tenant=0, start_us=5000.0, window_us=5000.0,
                        waves=6, accesses=3072, mean_latency_us=80.0,
                        max_latency_us=120.0, bad_waves=0,
                        ewma_latency_us=84.2, thrash_rate=0.5),
        SloViolation(tenant=0, at_us=5000.0, objective="p99_latency",
                     burn_fast=4.0, burn_slow=2.1, value=350.0,
                     target=300.0),
        SloViolation(tenant=-1, at_us=5500.0, objective="shed_rate",
                     burn_fast=9.0, burn_slow=5.0, value=0.4, target=0.1),
        AlertFired(name="hot", at_us=6000.0, tenant=0,
                   metric="tenant.ewma_latency_us", value=96.5,
                   threshold=90.0, state="firing"),
        AlertFired(name="hot", at_us=7000.0, tenant=0,
                   metric="tenant.ewma_latency_us", value=84.2,
                   threshold=90.0, state="resolved"),
        SloAttainment(tenant=0, at_us=9000.0, objective="p99_latency",
                      attainment=0.812, target=0.95, met=False),
        TenantComplete(tenant=0, at_us=9000.0, waves=16, freed_blocks=256,
                       writeback_blocks=4, p99_wave_latency_us=350.0),
        SloAttainment(tenant=-1, at_us=9500.0, objective="shed_rate",
                      attainment=0.6, target=0.9, met=False),
    ]


class TestTelemetrySummaries:
    def test_tenant_rows_fold_in_live_telemetry(self):
        s = summarize(_telemetry_events())
        t = s.tenants[0]
        assert t.windows == 2
        assert t.ewma_latency_us == 84.2  # last window wins
        assert t.thrash_rate == 0.5
        assert t.slo_violations == 1
        assert t.slo_attainment == 0.812
        assert t.slo_met is False
        assert t.alerts == 1  # firing transitions only

    def test_service_level_rollups(self):
        s = summarize(_telemetry_events())
        assert s.service_slo_violations == 1
        assert s.alert_counts == {"hot": 1}
        assert s.service_attainment == {"shed_rate": (0.6, False)}

    def test_round_trips_through_jsonl(self, tmp_path):
        """Satellite contract: inspect columns survive a log round-trip."""
        path = tmp_path / "serve.jsonl"
        sink = JsonlSink(path)
        for ev in _telemetry_events():
            sink.write(ev)
        sink.close()
        direct = summarize(_telemetry_events())
        loaded = summarize(path)
        assert loaded.event_counts == direct.event_counts
        assert loaded.tenants[0] == direct.tenants[0]
        assert loaded.alert_counts == direct.alert_counts
        assert loaded.service_attainment == direct.service_attainment
        assert render_summary(loaded) == render_summary(direct)

    def test_render_shows_slo_columns_and_alert_section(self):
        text = render_summary(summarize(_telemetry_events()))
        assert "slo att" in text and "alerts" in text
        assert "0.812 MISS" in text
        assert "live telemetry" in text
        assert "hotx1" in text
        assert "shed_rate" in text


class TestRender:
    def test_render_mentions_key_sections(self):
        text = render_summary(summarize(_decisions()))
        assert "ra / adaptive" in text
        assert "top thrashing blocks" in text
        assert "ra.a" in text and "ra.b" in text
        assert "threshold trajectory" in text

    def test_render_without_meta(self):
        events = [ev for ev in _decisions() if not isinstance(ev, RunMeta)]
        text = render_summary(summarize(events))
        assert "no run_meta header" in text
