"""Unit tests for ``repro diff`` (repro.obs.compare)."""

import json

import pytest

from repro.analysis.checkpoint import encode_config
from repro.config import MigrationPolicy, SimulationConfig
from repro.obs import JsonlSink, Observability
from repro.obs.compare import (
    diff_runs,
    flatten_config,
    metric_delta,
    render_diff,
)
from repro.obs.store import RunManifest, RunStore
from repro.sim.simulator import Simulator
from repro.workloads import make_workload


def _archive(store, seed: int) -> str:
    cfg = SimulationConfig(seed=seed).with_policy(MigrationPolicy.ADAPTIVE)
    manifest = RunManifest.create(
        kind="run", workload="ra", policy="adaptive", scale="tiny",
        seed=seed, oversubscription=1.5, config=encode_config(cfg))
    writer = store.open_run(manifest)
    obs = Observability()
    obs.bus.attach(JsonlSink(writer.events_path))
    result = Simulator(cfg).run(make_workload("ra", scale="tiny"),
                                oversubscription=1.5, obs=obs)
    obs.close()
    return writer.commit(result)


@pytest.fixture(scope="module")
def archived_pair(tmp_path_factory):
    store = RunStore(tmp_path_factory.mktemp("runs"))
    return store, _archive(store, seed=0), _archive(store, seed=1)


class TestMetricDelta:
    def test_within_tolerance_is_same(self):
        d = metric_delta("m", 100.0, 100.5, direction="lower",
                         tolerance=0.01)
        assert not d.significant and d.verdict == "same"

    def test_direction_awareness(self):
        worse = metric_delta("m", 100.0, 120.0, direction="lower")
        better = metric_delta("m", 100.0, 120.0, direction="higher")
        neutral = metric_delta("m", 100.0, 120.0)
        assert worse.verdict == "worse"
        assert better.verdict == "better"
        assert neutral.verdict == "changed"

    def test_zero_baseline(self):
        new = metric_delta("m", 0.0, 5.0)
        flat = metric_delta("m", 0.0, 0.0)
        assert new.pct is None and new.significant
        assert flat.pct == 0.0 and not flat.significant


class TestFlattenConfig:
    def test_nested_paths(self):
        flat = flatten_config({"gpu": {"clock_hz": 1, "sms": 2}, "seed": 3})
        assert flat == {"gpu.clock_hz": 1, "gpu.sms": 2, "seed": 3}


class TestDiffRuns:
    def test_covers_migrations_evictions_and_td(self, archived_pair):
        store, id_a, id_b = archived_pair
        diff = diff_runs(store.load(id_a), store.load(id_b))
        names = {m.name for m in diff.metrics}
        assert {"migrated_blocks", "evicted_blocks", "faults",
                "cycles"} <= names
        assert diff.config_changes["seed"] == (0, 1)
        assert diff.events is not None
        assert diff.events.roundtrips_a["count"] > 0
        # the tiny ra run has one allocation with adaptive decisions
        trajectories = diff.events.trajectories
        assert trajectories and trajectories[0].allocation == "ra.table"
        assert trajectories[0].decisions_a > 0
        assert trajectories[0].td_last_a is not None

    def test_identical_runs_diff_clean(self, archived_pair):
        store, id_a, _ = archived_pair
        diff = diff_runs(store.load(id_a), store.load(id_a))
        assert diff.config_changes == {}
        assert all(m.verdict == "same" for m in diff.metrics)
        assert diff.events.thrash_only_a == ()
        assert diff.events.thrash_only_b == ()

    def test_as_dict_is_json_serializable(self, archived_pair):
        store, id_a, id_b = archived_pair
        diff = diff_runs(store.load(id_a), store.load(id_b))
        payload = json.loads(json.dumps(diff.as_dict()))
        assert payload["run_a"]["seed"] == 0
        assert payload["run_b"]["seed"] == 1
        assert payload["config_changes"]["seed"] == {"a": 0, "b": 1}
        metric_names = [m["name"] for m in payload["metrics"]]
        assert "evicted_blocks" in metric_names
        assert payload["events"]["td_trajectories"]

    def test_render_is_human_readable(self, archived_pair):
        store, id_a, id_b = archived_pair
        text = render_diff(diff_runs(store.load(id_a), store.load(id_b)))
        assert "== run diff ==" in text
        assert "-- config changes" in text
        assert "migrated_blocks" in text
        assert "td trajectory per allocation" in text

    def test_no_event_logs_degrades_gracefully(self, archived_pair):
        store, id_a, _ = archived_pair
        run = store.load(id_a)
        import dataclasses
        bare = dataclasses.replace(run, events_path=None)
        diff = diff_runs(bare, bare)
        assert diff.events is None
        assert "td trajectories and thrash sets unavailable" \
            in render_diff(diff)
