"""Unit tests for trace capture and replay."""

import numpy as np
import pytest

from repro.trace import TraceData, TraceWorkload, load_trace, record_trace, save_trace
from repro.workloads import make_workload

from tests.conftest import StreamWorkload


class TestRecord:
    def test_records_allocations_and_waves(self):
        data = record_trace(StreamWorkload(size_mb=2, iterations=2), seed=0)
        assert data.alloc_names == ["stream.data"]
        assert data.num_launches == 2
        assert data.num_waves > 0
        assert data.num_accesses > 0
        data.validate()

    def test_offsets_partition_stream(self):
        data = record_trace(StreamWorkload(size_mb=2), seed=0)
        spans = np.diff(data.wave_offsets)
        assert spans.sum() == data.pages.size
        assert np.all(spans >= 0)

    def test_deterministic(self):
        a = record_trace(make_workload("ra", "tiny"), seed=4)
        b = record_trace(make_workload("ra", "tiny"), seed=4)
        assert np.array_equal(a.pages, b.pages)
        assert np.array_equal(a.counts, b.counts)

    def test_meta_fields(self):
        data = record_trace(make_workload("nw", "tiny"), seed=0)
        assert data.meta["workload"] == "nw"
        assert data.meta["category"] == "irregular"


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        data = record_trace(StreamWorkload(size_mb=2), seed=1)
        path = save_trace(data, tmp_path / "t.npz")
        loaded = load_trace(path)
        assert loaded.alloc_names == data.alloc_names
        assert np.array_equal(loaded.pages, data.pages)
        assert np.array_equal(loaded.wave_offsets, data.wave_offsets)
        assert np.array_equal(loaded.is_write, data.is_write)
        assert loaded.meta == data.meta

    def test_appends_npz_suffix(self, tmp_path):
        data = record_trace(StreamWorkload(size_mb=2), seed=1)
        path = save_trace(data, tmp_path / "t")
        assert path.suffix == ".npz"
        load_trace(path).validate()


class TestValidation:
    def _minimal(self, **overrides):
        kwargs = dict(
            alloc_names=["a"],
            alloc_sizes=np.array([4096], dtype=np.int64),
            alloc_read_only=np.array([False]),
            alloc_advice=["none"],
            kernel_names=["k"],
            kernel_iterations=np.array([0]),
            wave_kernel=np.array([0]),
            wave_offsets=np.array([0, 1]),
            wave_compute=np.array([float("nan")]),
            pages=np.array([0]),
            is_write=np.array([False]),
            counts=np.array([1]),
        )
        kwargs.update(overrides)
        return TraceData(**kwargs)

    def test_minimal_valid(self):
        self._minimal().validate()

    def test_bad_offsets(self):
        with pytest.raises(ValueError):
            self._minimal(wave_offsets=np.array([0, 2])).validate()

    def test_bad_kernel_index(self):
        with pytest.raises(ValueError):
            self._minimal(wave_kernel=np.array([5])).validate()

    def test_bad_counts(self):
        with pytest.raises(ValueError):
            self._minimal(counts=np.array([0])).validate()

    def test_bad_version(self):
        with pytest.raises(ValueError):
            self._minimal(version=99).validate()


class TestReplay:
    def test_replay_matches_source_simulation(self):
        from repro import MigrationPolicy, SimulationConfig, Simulator
        cfg = SimulationConfig(seed=7).with_policy(MigrationPolicy.ADAPTIVE)
        orig = Simulator(cfg).run(make_workload("ra", "tiny"),
                                  oversubscription=1.25)
        data = record_trace(make_workload("ra", "tiny"), seed=7)
        repl = Simulator(cfg).run(TraceWorkload(data),
                                  oversubscription=1.25)
        assert repl.total_cycles == orig.total_cycles
        assert repl.events == orig.events

    def test_replay_preserves_metadata(self):
        data = record_trace(make_workload("sssp", "tiny"), seed=0)
        wl = TraceWorkload(data)
        assert wl.name == "sssp"
        assert wl.category.value == "irregular"

    def test_replay_under_different_policy(self):
        from repro import MigrationPolicy, SimulationConfig, Simulator
        data = record_trace(make_workload("ra", "tiny"), seed=2)
        runs = {}
        for pol in (MigrationPolicy.DISABLED, MigrationPolicy.ADAPTIVE):
            cfg = SimulationConfig(seed=2).with_policy(pol)
            runs[pol] = Simulator(cfg).run(TraceWorkload(data),
                                           oversubscription=1.25)
        assert runs[MigrationPolicy.ADAPTIVE].total_cycles < \
            runs[MigrationPolicy.DISABLED].total_cycles
