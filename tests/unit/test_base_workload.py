"""Unit tests for the workload abstractions (Wave, WaveBuilder, chunked)."""

import numpy as np
import pytest

from repro.workloads.base import Wave, WaveBuilder, chunked

from tests.conftest import StreamWorkload, make_vas
from repro.memory.allocator import VirtualAddressSpace


class TestWave:
    def test_default_counts(self):
        w = Wave(np.array([1, 2]), np.array([False, True]))
        assert list(w.counts) == [1, 1]
        assert w.n_accesses == 2

    def test_explicit_counts(self):
        w = Wave(np.array([1]), np.array([False]), np.array([32]))
        assert w.n_accesses == 32

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            Wave(np.array([1, 2]), np.array([False]))

    def test_counts_shape_mismatch(self):
        with pytest.raises(ValueError):
            Wave(np.array([1]), np.array([False]), np.array([1, 2]))

    def test_counts_must_be_positive(self):
        with pytest.raises(ValueError):
            Wave(np.array([1]), np.array([False]), np.array([0]))

    def test_reads_writes_helpers(self):
        r = Wave.reads(np.array([5]), counts=4)
        w = Wave.writes(np.array([5]))
        assert not r.is_write[0] and r.counts[0] == 4
        assert w.is_write[0]


class TestWaveBuilder:
    def test_mixed_build(self):
        wave = (WaveBuilder()
                .read(np.array([0, 1]), 2)
                .write(np.array([2]))
                .build())
        assert wave.n_accesses == 5
        assert list(wave.is_write) == [False, False, True]

    def test_empty_build(self):
        wave = WaveBuilder().build()
        assert wave.n_accesses == 0

    def test_compute_per_access(self):
        wave = WaveBuilder().read(np.array([0]), 10).build(
            compute_per_access=2.5)
        assert wave.compute_cycles == pytest.approx(25.0)

    def test_absolute_compute(self):
        wave = WaveBuilder().read(np.array([0])).build(compute_cycles=123)
        assert wave.compute_cycles == 123

    def test_both_compute_args_rejected(self):
        with pytest.raises(ValueError):
            WaveBuilder().read(np.array([0])).build(
                compute_cycles=1, compute_per_access=1)

    def test_per_entry_count_arrays(self):
        wave = (WaveBuilder()
                .read(np.array([0, 1]), np.array([3, 4]))
                .build())
        assert list(wave.counts) == [3, 4]


class TestChunked:
    def test_even_split(self):
        parts = list(chunked(np.arange(10), 5))
        assert [list(p) for p in parts] == [[0, 1, 2, 3, 4], [5, 6, 7, 8, 9]]

    def test_remainder(self):
        parts = list(chunked(np.arange(7), 3))
        assert [len(p) for p in parts] == [3, 3, 1]

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            list(chunked(np.arange(3), 0))


class TestWorkloadBase:
    def test_build_registers_allocations(self):
        wl = StreamWorkload(size_mb=2)
        vas = VirtualAddressSpace()
        wl.build(vas, np.random.default_rng(0))
        assert "stream.data" in wl.allocations
        assert wl.footprint_bytes == vas.footprint_bytes

    def test_kernels_yield_waves(self):
        wl = StreamWorkload(size_mb=2, iterations=1)
        wl.build(VirtualAddressSpace(), np.random.default_rng(0))
        launches = list(wl.kernels())
        assert len(launches) == 1
        waves = list(launches[0].waves())
        assert waves and all(w.n_accesses > 0 for w in waves)
