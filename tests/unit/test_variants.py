"""Unit tests for the dynamic-threshold variants."""

import dataclasses

import numpy as np
import pytest

from repro.config import MigrationPolicy, PolicyConfig, SimulationConfig
from repro.core.policy import AdaptivePolicy, make_policy
from repro.core.variants import (
    VARIANTS,
    ExponentialBackoffPolicy,
    LinearBackoffPolicy,
    OccupancyOnlyPolicy,
    make_variant,
)

from tests.conftest import make_driver, make_vas


@pytest.fixture
def driver():
    drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE, capacity_mb=16)
    drv.device.note_pressure()
    return drv


def blocks(*ids):
    return np.array(ids, dtype=np.int64)


class TestRegistry:
    def test_contains_paper_design(self):
        assert VARIANTS["multiplicative"] is AdaptivePolicy

    def test_make_variant(self):
        pol = make_variant("linear", PolicyConfig())
        assert isinstance(pol, LinearBackoffPolicy)

    def test_unknown_variant(self):
        with pytest.raises(KeyError):
            make_variant("quantum", PolicyConfig())

    def test_make_policy_respects_variant_field(self):
        cfg = PolicyConfig(policy=MigrationPolicy.ADAPTIVE,
                           threshold_variant="exponential")
        assert isinstance(make_policy(cfg), ExponentialBackoffPolicy)

    def test_variant_ignored_for_static_schemes(self):
        cfg = PolicyConfig(policy=MigrationPolicy.ALWAYS,
                           threshold_variant="exponential")
        pol = make_policy(cfg)
        assert not isinstance(pol, ExponentialBackoffPolicy)


class TestLinear:
    def test_additive_growth(self, driver):
        pol = LinearBackoffPolicy(PolicyConfig(static_threshold=8,
                                               migration_penalty=4))
        driver.counters.add_roundtrip(blocks(1))
        driver.counters.add_roundtrip(blocks(1))
        td, _ = pol.decision_state(blocks(0, 1), driver)
        assert td[0] == 8        # ts + 0*p
        assert td[1] == 16       # ts + 2*p

    def test_pre_pressure_matches_paper(self):
        drv = make_driver(make_vas(8), MigrationPolicy.ADAPTIVE,
                          capacity_mb=16)
        pol = LinearBackoffPolicy(PolicyConfig())
        paper = AdaptivePolicy(PolicyConfig())
        td_v, _ = pol.decision_state(blocks(0), drv)
        td_p, _ = paper.decision_state(blocks(0), drv)
        assert td_v[0] == td_p[0]


class TestExponential:
    def test_geometric_growth(self, driver):
        pol = ExponentialBackoffPolicy(PolicyConfig(static_threshold=8,
                                                    migration_penalty=2))
        driver.counters.add_roundtrip(blocks(1))
        td, _ = pol.decision_state(blocks(0, 1), driver)
        assert td[0] == 16       # 8 * 2^1
        assert td[1] == 32       # 8 * 2^2

    def test_capped(self, driver):
        pol = ExponentialBackoffPolicy(PolicyConfig(static_threshold=8,
                                                    migration_penalty=8))
        for _ in range(20):
            driver.counters.add_roundtrip(blocks(0))
        td, _ = pol.decision_state(blocks(0), driver)
        assert td[0] == ExponentialBackoffPolicy.CAP

    def test_grows_faster_than_multiplicative(self, driver):
        cfg = PolicyConfig(static_threshold=8, migration_penalty=4)
        exp = ExponentialBackoffPolicy(cfg)
        mult = AdaptivePolicy(cfg)
        for _ in range(3):
            driver.counters.add_roundtrip(blocks(0))
        td_e, _ = exp.decision_state(blocks(0), driver)
        td_m, _ = mult.decision_state(blocks(0), driver)
        assert td_e[0] > td_m[0]


class TestOccupancyOnly:
    def test_ignores_roundtrips(self, driver):
        pol = OccupancyOnlyPolicy(PolicyConfig(static_threshold=8))
        for _ in range(5):
            driver.counters.add_roundtrip(blocks(0))
        td, _ = pol.decision_state(blocks(0, 1), driver)
        assert td[0] == td[1]
        assert td[0] <= 9


class TestEndToEnd:
    @pytest.mark.parametrize("variant", sorted(VARIANTS))
    def test_variant_runs(self, variant):
        from repro import Simulator
        from repro.workloads import make_workload
        cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.ADAPTIVE)
        cfg = dataclasses.replace(cfg, policy=dataclasses.replace(
            cfg.policy, threshold_variant=variant))
        r = Simulator(cfg).run(make_workload("ra", "tiny"),
                               oversubscription=1.25)
        assert r.total_cycles > 0

    def test_occupancy_only_thrashes_most(self):
        from repro import Simulator
        from repro.workloads import make_workload

        def run(variant):
            cfg = SimulationConfig(seed=1).with_policy(
                MigrationPolicy.ADAPTIVE)
            cfg = dataclasses.replace(cfg, policy=dataclasses.replace(
                cfg.policy, threshold_variant=variant))
            return Simulator(cfg).run(make_workload("ra", "tiny"),
                                      oversubscription=1.25)
        occ = run("occupancy-only")
        mult = run("multiplicative")
        assert occ.pages_thrashed > 5 * max(mult.pages_thrashed, 1)
