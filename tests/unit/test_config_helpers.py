"""Unit tests for the newer configuration helpers and ablation knobs."""

import numpy as np
import pytest

from repro.config import (
    EvictionGranularity,
    MigrationPolicy,
    PolicyConfig,
    PrefetcherKind,
    SimulationConfig,
)
from repro.core.policy import AdaptivePolicy

from tests.conftest import make_driver, make_vas


class TestConfigHelpers:
    def test_with_eviction_granularity(self):
        cfg = SimulationConfig().with_eviction_granularity(
            EvictionGranularity.BLOCK_64KB)
        assert cfg.memory.eviction_granularity is \
            EvictionGranularity.BLOCK_64KB

    def test_with_prefetcher_kind(self):
        cfg = SimulationConfig().with_prefetcher(PrefetcherKind.SEQUENTIAL,
                                                 degree=7)
        assert cfg.memory.prefetcher is PrefetcherKind.SEQUENTIAL
        assert cfg.memory.prefetch_degree == 7
        assert cfg.memory.prefetcher_enabled

    def test_with_prefetcher_none_disables(self):
        cfg = SimulationConfig().with_prefetcher(PrefetcherKind.NONE)
        assert not cfg.memory.prefetcher_enabled

    def test_defaults_preserved(self):
        cfg = SimulationConfig().with_prefetcher(PrefetcherKind.RANDOM)
        assert cfg.policy == SimulationConfig().policy


class TestHistoricCountersKnob:
    def test_default_historic(self):
        assert PolicyConfig().historic_counters

    def test_volta_ablation_changes_baseline_counter(self):
        vas = make_vas(8)
        drv = make_driver(vas, MigrationPolicy.ADAPTIVE, capacity_mb=16)
        blocks = np.array([0])
        drv.counters.add_accesses(blocks, np.array([50]))
        drv.counters.add_remote_accesses(blocks, np.array([3]))

        historic = AdaptivePolicy(PolicyConfig(historic_counters=True))
        volta = AdaptivePolicy(PolicyConfig(historic_counters=False))
        _, c_hist = historic.decision_state(blocks, drv)
        _, c_volta = volta.decision_state(blocks, drv)
        assert c_hist[0] == 50
        assert c_volta[0] == 3

    def test_volta_ablation_runs_end_to_end(self):
        import dataclasses
        from repro import Simulator
        from repro.workloads import make_workload
        cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.ADAPTIVE)
        cfg = dataclasses.replace(cfg, policy=dataclasses.replace(
            cfg.policy, historic_counters=False))
        r = Simulator(cfg).run(make_workload("ra", "tiny"),
                               oversubscription=1.25)
        assert r.total_cycles > 0


class TestThresholdVariantValidation:
    def test_known_variants_accepted(self):
        for v in ("multiplicative", "linear", "exponential",
                  "occupancy-only"):
            PolicyConfig(threshold_variant=v)

    def test_unknown_variant_rejected_at_construction(self):
        with pytest.raises(ValueError):
            PolicyConfig(threshold_variant="quantum")
