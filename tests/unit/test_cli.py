"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "ra"])
        assert args.workload == "ra"
        assert args.policy == "adaptive"
        assert args.oversub == 1.25

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nosuch"])

    def test_figure_ids(self):
        args = build_parser().parse_args(["figure", "fig6"])
        assert args.id == "fig6"

    def test_trace_subcommands(self):
        args = build_parser().parse_args(
            ["trace", "record", "ra", "-o", "out.npz"])
        assert args.trace_cmd == "record"
        args = build_parser().parse_args(
            ["trace", "replay", "-i", "in.npz", "--policy", "always"])
        assert args.policy == "always"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "backprop" in out and "adaptive" in out and "fig6" in out

    def test_run_tiny(self, capsys):
        rc = main(["run", "ra", "--scale", "tiny", "--oversub", "1.25",
                   "--seed", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "thrash_migrations" in out
        assert "cycle breakdown" in out

    def test_run_with_histogram(self, capsys):
        rc = main(["run", "fdtd", "--scale", "tiny", "--oversub", "0.8",
                   "--histogram"])
        assert rc == 0
        assert "access histogram" in capsys.readouterr().out

    def test_run_with_options(self, capsys):
        rc = main(["run", "ra", "--scale", "tiny", "--policy", "always",
                   "--evict", "64kb", "--prefetcher", "sequential",
                   "--prefetch-degree", "2", "--ts", "16"])
        assert rc == 0

    def test_compare(self, capsys):
        rc = main(["compare", "ra", "--scale", "tiny"])
        assert rc == 0
        out = capsys.readouterr().out
        for policy in ("disabled", "always", "oversub", "adaptive"):
            assert policy in out

    def test_figure_table1(self, capsys, tmp_path):
        out_file = tmp_path / "t1.txt"
        rc = main(["figure", "table1", "--out", str(out_file)])
        assert rc == 0
        assert "Tree-based" in out_file.read_text()

    def test_trace_roundtrip(self, capsys, tmp_path):
        trace_file = tmp_path / "ra.npz"
        rc = main(["trace", "record", "ra", "--scale", "tiny",
                   "-o", str(trace_file)])
        assert rc == 0
        assert trace_file.exists()
        rc = main(["trace", "replay", "-i", str(trace_file),
                   "--policy", "adaptive"])
        assert rc == 0
        assert "cycle breakdown" in capsys.readouterr().out
