"""Unit tests for the SM occupancy model."""

import pytest

from repro.config import GpuConfig
from repro.gpu.sm import KernelResources, SmOccupancyModel, SmResources


@pytest.fixture
def model():
    return SmOccupancyModel()


class TestKernelResources:
    def test_rejects_empty_cta(self):
        with pytest.raises(ValueError):
            KernelResources(threads_per_cta=0)

    def test_rejects_negative_resources(self):
        with pytest.raises(ValueError):
            KernelResources(registers_per_thread=-1)


class TestOccupancy:
    def test_full_occupancy_reference_kernel(self, model):
        """256 threads, 32 regs: the classic fully-occupant config."""
        k = KernelResources(threads_per_cta=256, registers_per_thread=32)
        assert model.warps_per_cta(k) == 8
        assert model.ctas_per_sm(k) == 8      # 64 warps / 8 per CTA
        assert model.occupancy(k) == pytest.approx(1.0)
        assert model.total_active_warps(k) == 64 * 28

    def test_register_limited(self, model):
        """High register pressure halves residency."""
        k = KernelResources(threads_per_cta=256, registers_per_thread=64)
        # regs/CTA = 16384; 65536/16384 = 4 CTAs -> 32 warps of 64.
        assert model.ctas_per_sm(k) == 4
        assert model.occupancy(k) == pytest.approx(0.5)

    def test_shared_memory_limited(self, model):
        k = KernelResources(threads_per_cta=128, registers_per_thread=16,
                            shared_mem_per_cta=49152)
        assert model.ctas_per_sm(k) == 2   # 98304 / 49152

    def test_cta_slot_limited(self, model):
        """Tiny CTAs hit the 32-CTA cap before the warp cap."""
        k = KernelResources(threads_per_cta=32, registers_per_thread=16)
        assert model.ctas_per_sm(k) == 32
        assert model.occupancy(k) == pytest.approx(0.5)

    def test_warp_rounding(self, model):
        """Odd CTA sizes round up to whole warps."""
        k = KernelResources(threads_per_cta=33, registers_per_thread=16)
        assert model.warps_per_cta(k) == 2

    def test_impossible_kernel(self, model):
        k = KernelResources(threads_per_cta=256,
                            shared_mem_per_cta=200 * 1024)
        assert model.ctas_per_sm(k) == 0


class TestComputeScale:
    def test_full_occupancy_no_penalty(self, model):
        k = KernelResources(threads_per_cta=256, registers_per_thread=32)
        assert model.compute_scale(k) == pytest.approx(1.0)

    def test_half_occupancy_doubles_compute(self, model):
        k = KernelResources(threads_per_cta=256, registers_per_thread=64)
        assert model.compute_scale(k) == pytest.approx(2.0)

    def test_never_below_one(self, model):
        k = KernelResources(threads_per_cta=256, registers_per_thread=32)
        assert model.compute_scale(k, reference_occupancy=0.25) == 1.0

    def test_unschedulable_raises(self, model):
        k = KernelResources(threads_per_cta=256,
                            shared_mem_per_cta=200 * 1024)
        with pytest.raises(ValueError):
            model.compute_scale(k)

    def test_bad_reference(self, model):
        k = KernelResources()
        with pytest.raises(ValueError):
            model.compute_scale(k, reference_occupancy=0.0)


class TestCustomHardware:
    def test_smaller_gpu(self):
        gpu = GpuConfig(num_sms=2, max_warps_per_sm=32)
        model = SmOccupancyModel(gpu)
        k = KernelResources(threads_per_cta=256, registers_per_thread=32)
        assert model.ctas_per_sm(k) == 4   # 32 warps / 8
        assert model.total_active_warps(k) == 64

    def test_custom_sm_resources(self):
        model = SmOccupancyModel(sm=SmResources(register_file=32768))
        k = KernelResources(threads_per_cta=256, registers_per_thread=32)
        assert model.ctas_per_sm(k) == 4
