"""Grid-runner metric rollups (``GridOptions.metrics``)."""

from repro.analysis.parallel import GridCell, GridOptions, run_grid
from repro.config import MigrationPolicy
from repro.obs import MetricsRegistry

CELLS = [
    GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny", seed=s)
    for s in range(3)
]


def test_serial_grid_records_cell_metrics():
    reg = MetricsRegistry()
    results = run_grid(CELLS, options=GridOptions(metrics=reg))
    assert all(r is not None for r in results)
    m = reg.as_dict()
    assert m["grid.cells_completed"]["value"] == len(CELLS)
    assert m["grid.cell_ms"]["count"] == len(CELLS)
    assert m["grid.cell_ms"]["min"] >= 0
    assert m["grid.cell_retries"]["value"] == 0
    assert m["grid.pool_rebuilds"]["value"] == 0


def test_parallel_grid_records_cell_metrics():
    reg = MetricsRegistry()
    results = run_grid(CELLS, max_workers=2,
                       options=GridOptions(metrics=reg))
    assert all(r is not None for r in results)
    m = reg.as_dict()
    assert m["grid.cells_completed"]["value"] == len(CELLS)
    assert m["grid.cell_ms"]["count"] == len(CELLS)


def test_resume_counts_checkpoint_hits(tmp_path):
    path = str(tmp_path / "journal.jsonl")
    run_grid(CELLS, options=GridOptions(checkpoint=path))

    reg = MetricsRegistry()
    run_grid(CELLS, options=GridOptions(checkpoint=path, resume=True,
                                        metrics=reg))
    m = reg.as_dict()
    assert m["grid.cells_from_checkpoint"]["value"] == len(CELLS)
    assert m["grid.cells_completed"]["value"] == 0


def test_retries_are_counted():
    calls = {"n": 0}

    def flaky_once(cell):
        calls["n"] += 1
        if calls["n"] == 1:
            raise RuntimeError("transient")
        return object()

    from repro.analysis import parallel
    reg = MetricsRegistry()
    original = parallel.run_cell
    parallel.run_cell = flaky_once
    try:
        results = run_grid(CELLS[:1], options=GridOptions(
            retries=2, retry_backoff_s=0.0, metrics=reg))
    finally:
        parallel.run_cell = original
    assert results[0] is not None
    m = reg.as_dict()
    assert m["grid.cell_retries"]["value"] == 1
    assert m["grid.cells_completed"]["value"] == 1


def test_metrics_off_registers_nothing():
    reg = MetricsRegistry()
    run_grid(CELLS[:1], options=GridOptions())
    assert len(reg) == 0
