"""Unit tests for the open-loop arrival-trace generator."""

import pytest

from repro.config import ServeConfig
from repro.serve import Arrival, generate_arrivals


def cfg(**kw):
    return ServeConfig(**{"tenants": 8, "seed": 0, **kw})


class TestGenerateArrivals:
    def test_tenant_ids_are_dense_and_ordered(self):
        trace = generate_arrivals(cfg())
        assert [a.tenant for a in trace] == list(range(len(trace)))

    def test_times_nondecreasing_from_zero(self):
        trace = generate_arrivals(cfg(tenants=32))
        times = [a.at_us for a in trace]
        assert all(t >= 0.0 for t in times)
        assert times == sorted(times)

    def test_workloads_drawn_from_mix(self):
        mix = ("ra", "bfs")
        trace = generate_arrivals(cfg(tenants=64, workload_mix=mix))
        assert {a.workload for a in trace} <= set(mix)

    def test_single_item_mix_is_constant(self):
        trace = generate_arrivals(cfg(workload_mix=("sssp",)))
        assert {a.workload for a in trace} == {"sssp"}

    def test_deterministic_per_seed(self):
        assert generate_arrivals(cfg(seed=7)) == generate_arrivals(cfg(seed=7))

    def test_seed_changes_trace(self):
        assert generate_arrivals(cfg(seed=1)) != generate_arrivals(cfg(seed=2))

    def test_duration_cut_truncates(self):
        full = generate_arrivals(cfg(tenants=64))
        horizon_ms = full[len(full) // 2].at_us / 1e3
        cut = generate_arrivals(cfg(tenants=64, duration_ms=horizon_ms))
        assert 0 < len(cut) < len(full)
        assert all(a.at_us <= horizon_ms * 1e3 for a in cut)

    def test_higher_rate_compresses_horizon(self):
        slow = generate_arrivals(cfg(tenants=32, arrival_rate=100.0))
        fast = generate_arrivals(cfg(tenants=32, arrival_rate=10000.0))
        assert fast[-1].at_us < slow[-1].at_us

    def test_bursty_differs_from_poisson(self):
        poisson = generate_arrivals(cfg(tenants=32, process="poisson"))
        bursty = generate_arrivals(cfg(tenants=32, process="bursty"))
        assert [a.at_us for a in poisson] != [a.at_us for a in bursty]

    def test_bursty_is_deterministic(self):
        a = generate_arrivals(cfg(tenants=32, process="bursty", seed=5))
        b = generate_arrivals(cfg(tenants=32, process="bursty", seed=5))
        assert a == b

    def test_arrival_is_frozen(self):
        a = generate_arrivals(cfg())[0]
        assert isinstance(a, Arrival)
        with pytest.raises(AttributeError):
            a.at_us = 0.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            generate_arrivals(cfg(arrival_rate=0.0))
        with pytest.raises(ValueError):
            generate_arrivals(cfg(process="sawtooth"))
