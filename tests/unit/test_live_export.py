"""Unit tests for the OpenMetrics text exposition."""

import math

from repro.obs.live.export import (
    _bucket_upper,
    _fmt,
    _sanitize,
    to_openmetrics,
    write_openmetrics,
)
from repro.obs.metrics import MetricsRegistry


class TestHelpers:
    def test_sanitize_dots_and_symbols(self):
        assert _sanitize("serve.shed_rate") == "serve_shed_rate"
        assert _sanitize("serve.tenant.3.ewma") == "serve_tenant_3_ewma"
        assert _sanitize("a-b c") == "a_b_c"

    def test_sanitize_leading_digit(self):
        assert _sanitize("9lives") == "_9lives"

    def test_bucket_upper(self):
        assert _bucket_upper("0") == 0.0
        assert _bucket_upper("1") == 1.0
        assert _bucket_upper("(8, 16]") == 16.0

    def test_fmt(self):
        assert _fmt(3.0) == "3"
        assert _fmt(3.5) == "3.5"
        assert _fmt(math.inf) == "+Inf"
        assert _fmt(-math.inf) == "-Inf"
        assert _fmt(math.nan) == "NaN"


class TestExposition:
    def test_registry_renders_all_metric_kinds(self):
        reg = MetricsRegistry()
        reg.counter("serve.waves").inc(42)
        reg.gauge("serve.oversub").set(1.5)
        series = reg.series("serve.queue_depth")
        series.append(0.0, 1.0)
        series.append(10.0, 3.0)
        hist = reg.histogram("serve.latency")
        for v in (1, 2, 9, 17):
            hist.observe(v)
        text = to_openmetrics(reg)
        assert "# TYPE serve_waves counter" in text
        assert "serve_waves_total 42" in text
        assert "serve_oversub 1.5" in text
        # Series export their last point as a gauge.
        assert "serve_queue_depth 3" in text
        assert "# TYPE serve_latency histogram" in text
        assert 'serve_latency_bucket{le="+Inf"} 4' in text
        assert "serve_latency_sum 29" in text
        assert "serve_latency_count 4" in text
        assert text.endswith("# EOF\n")

    def test_histogram_buckets_are_cumulative_and_ordered(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h")
        for v in (1, 1, 3, 100):
            hist.observe(v)
        lines = [l for l in to_openmetrics(reg).splitlines()
                 if l.startswith("h_bucket")]
        uppers = [l.split('le="')[1].split('"')[0] for l in lines]
        assert uppers[-1] == "+Inf"
        counts = [int(l.rsplit(" ", 1)[1]) for l in lines]
        assert counts == sorted(counts)  # cumulative, monotone
        assert counts[-1] == 4

    def test_accepts_plain_snapshot_dict(self):
        """A loaded --metrics JSON file works interchangeably."""
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        assert to_openmetrics(reg.as_dict()) == to_openmetrics(reg)

    def test_names_are_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz").inc(1)
        reg.counter("aa").inc(1)
        text = to_openmetrics(reg)
        assert text.index("aa_total") < text.index("zz_total")

    def test_empty_snapshot_is_just_eof(self):
        assert to_openmetrics({}) == "# EOF\n"

    def test_write_openmetrics(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(1)
        out = tmp_path / "metrics.prom"
        write_openmetrics(reg, out)
        assert out.read_text() == to_openmetrics(reg)
