"""Unit tests for the migrate-vs-remote decision policies."""

import numpy as np
import pytest

from repro.config import MigrationPolicy, PolicyConfig
from repro.core.policy import (
    AdaptivePolicy,
    FirstTouchPolicy,
    StaticAlwaysPolicy,
    StaticOversubPolicy,
    make_policy,
)

from tests.conftest import make_driver, make_vas


@pytest.fixture
def driver():
    return make_driver(make_vas(8), capacity_mb=16)


def blocks(*ids):
    return np.array(ids, dtype=np.int64)


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        (MigrationPolicy.DISABLED, FirstTouchPolicy),
        (MigrationPolicy.ALWAYS, StaticAlwaysPolicy),
        (MigrationPolicy.OVERSUB, StaticOversubPolicy),
        (MigrationPolicy.ADAPTIVE, AdaptivePolicy),
    ])
    def test_make_policy(self, kind, cls):
        pol = make_policy(PolicyConfig(policy=kind))
        assert isinstance(pol, cls)
        assert pol.kind is kind


class TestFirstTouchPolicy(object):
    def test_threshold_one_counter_zero(self, driver):
        pol = FirstTouchPolicy(PolicyConfig())
        td, c0 = pol.decision_state(blocks(0, 1), driver)
        assert list(td) == [1, 1]
        assert list(c0) == [0, 0]


class TestAlwaysPolicy:
    def test_uses_volta_counters(self, driver):
        pol = StaticAlwaysPolicy(PolicyConfig(static_threshold=8))
        driver.counters.add_remote_accesses(blocks(1), np.array([5]))
        driver.counters.add_accesses(blocks(1), np.array([100]))
        td, c0 = pol.decision_state(blocks(0, 1), driver)
        assert list(td) == [8, 8]
        assert list(c0) == [0, 5]  # historic counters ignored


class TestOversubPolicy:
    def test_first_touch_before_pressure(self, driver):
        pol = StaticOversubPolicy(PolicyConfig(static_threshold=8))
        td, c0 = pol.decision_state(blocks(0), driver)
        assert td[0] == 1

    def test_arms_only_for_never_migrated(self, driver):
        pol = StaticOversubPolicy(PolicyConfig(static_threshold=8))
        driver.device.note_pressure()
        driver.ever_migrated[1] = True
        td, _ = pol.decision_state(blocks(0, 1), driver)
        assert td[0] == 8   # never migrated: delayed
        assert td[1] == 1   # device-preferred: first touch


class TestAdaptivePolicy:
    def test_no_oversub_scales_with_occupancy(self, driver):
        pol = AdaptivePolicy(PolicyConfig(static_threshold=8))
        td, _ = pol.decision_state(blocks(0), driver)
        assert td[0] == 1   # empty device
        driver.device.allocate(driver.device.capacity_blocks // 2)
        td, _ = pol.decision_state(blocks(0), driver)
        assert td[0] == 5   # floor(8 * 0.5) + 1

    def test_oversub_uses_roundtrips_and_penalty(self, driver):
        pol = AdaptivePolicy(PolicyConfig(static_threshold=8,
                                          migration_penalty=2))
        driver.device.note_pressure()
        driver.counters.add_roundtrip(blocks(1))
        td, _ = pol.decision_state(blocks(0, 1), driver)
        assert td[0] == 16   # 8 * (0+1) * 2
        assert td[1] == 32   # 8 * (1+1) * 2

    def test_uses_historic_counters(self, driver):
        pol = AdaptivePolicy(PolicyConfig())
        driver.counters.add_accesses(blocks(2), np.array([42]))
        driver.counters.add_remote_accesses(blocks(2), np.array([7]))
        _, c0 = pol.decision_state(blocks(2), driver)
        assert c0[0] == 42   # volta counters ignored
