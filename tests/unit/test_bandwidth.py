"""Unit tests for traffic and bandwidth reporting on RunResult."""

import pytest

from repro import MigrationPolicy, SimulationConfig, Simulator
from repro.config import SimulationConfig as SC
from repro.gpu.timing import WaveTiming
from repro.memory.layout import BASIC_BLOCK_SIZE, CHUNK_SIZE
from repro.sim.results import RunResult
from repro.uvm.driver import WaveOutcome
from repro.workloads import make_workload


def result(cycles=1481e6, **events):
    return RunResult(
        workload="w", config=SC(), total_cycles=cycles,
        timing=WaveTiming(total=cycles), events=WaveOutcome(**events),
        footprint_bytes=CHUNK_SIZE, device_capacity_bytes=CHUNK_SIZE)


class TestTrafficProperties:
    def test_h2d_bytes(self):
        r = result(migrated_blocks=3, prefetched_blocks=2)
        assert r.h2d_bytes == 5 * BASIC_BLOCK_SIZE

    def test_d2h_bytes(self):
        r = result(writeback_blocks=4)
        assert r.d2h_bytes == 4 * BASIC_BLOCK_SIZE

    def test_remote_bytes(self):
        r = result(n_remote=10)
        assert r.remote_bytes == 10 * 128

    def test_utilization_bounds(self):
        # One second of runtime; 1.6 GB moved over a 16 GB/s link = 10%.
        blocks = int(1.6e9 // BASIC_BLOCK_SIZE)
        r = result(migrated_blocks=blocks)
        assert r.pcie_utilization == pytest.approx(0.1, rel=0.01)

    def test_utilization_zero_cycles(self):
        r = result(cycles=0)
        assert r.pcie_utilization == 0.0

    def test_report_keys(self):
        rep = result(migrated_blocks=1).bandwidth_report()
        assert set(rep) == {"h2d_gbps", "d2h_gbps", "remote_gbps",
                            "pcie_utilization"}


class TestEndToEndUtilization:
    def test_thrashing_run_saturates_link(self):
        cfg = SimulationConfig(seed=1).with_policy(MigrationPolicy.DISABLED)
        r = Simulator(cfg).run(make_workload("ra", "tiny"),
                               oversubscription=1.25)
        rep = r.bandwidth_report()
        # Thrash-bound run: the PCIe link is the bottleneck resource.
        assert rep["pcie_utilization"] > 0.3
        assert rep["h2d_gbps"] > rep["d2h_gbps"] > 0

    def test_adaptive_cuts_link_pressure(self):
        def run(policy):
            cfg = SimulationConfig(seed=1).with_policy(policy)
            return Simulator(cfg).run(make_workload("ra", "tiny"),
                                      oversubscription=1.25)
        base = run(MigrationPolicy.DISABLED)
        adap = run(MigrationPolicy.ADAPTIVE)
        assert adap.h2d_bytes < 0.3 * base.h2d_bytes
