"""Unit tests for the chunk directory and victim selection."""

import numpy as np
import pytest

from repro.config import ReplacementPolicy
from repro.memory.allocation import ChunkSpan
from repro.uvm.eviction import ChunkDirectory, select_victims


def make_directory(chunk_blocks=(32, 32, 32), gap_blocks=0):
    """Directory over contiguous chunks (optionally a trailing gap)."""
    spans = []
    cursor = 0
    for cid, n in enumerate(chunk_blocks):
        spans.append(ChunkSpan(chunk_id=cid, first_block=cursor, num_blocks=n))
        cursor += n
    return ChunkDirectory(tuple(spans), cursor + gap_blocks)


class TestDirectory:
    def test_block_mapping(self):
        d = make_directory((32, 16))
        assert d.chunk_of_block[0] == 0
        assert d.chunk_of_block[31] == 0
        assert d.chunk_of_block[32] == 1
        assert d.chunk_of_block[47] == 1

    def test_gap_blocks_unowned(self):
        d = make_directory((32,), gap_blocks=4)
        assert np.all(d.chunk_of_block[32:] == -1)

    def test_blocks_of_chunk(self):
        d = make_directory((4, 8))
        assert list(d.blocks_of_chunk(1)) == list(range(4, 12))

    def test_touch_updates_timestamp(self):
        d = make_directory()
        d.touch(np.array([1]), 42)
        assert d.last_touch[1] == 42
        assert d.last_touch[0] == 0

    def test_chunk_heat_aggregates(self):
        d = make_directory((4, 4))
        counters = np.array([1, 2, 3, 4, 10, 0, 0, 0], dtype=np.uint64)
        heat = d.chunk_heat(counters)
        assert heat[0] == 10
        assert heat[1] == 10

    def test_heat_buckets_quantize(self):
        d = make_directory((4, 4))
        # densities 2.5 vs 3.0 land in the same log2 bucket (1).
        counters = np.array([2, 3, 2, 3, 3, 3, 3, 3], dtype=np.uint64)
        buckets = d.chunk_heat_buckets(counters)
        assert buckets[0] == buckets[1]

    def test_heat_buckets_separate_orders_of_magnitude(self):
        d = make_directory((4, 4))
        counters = np.array([1, 1, 1, 1, 100, 100, 100, 100], dtype=np.uint64)
        buckets = d.chunk_heat_buckets(counters)
        assert buckets[0] < buckets[1]

    def test_chunk_dirty(self):
        d = make_directory((4, 4))
        dirty = np.array([False, True, False, False,
                          False, False, False, False])
        flags = d.chunk_dirty(dirty)
        assert flags[0] and not flags[1]

    def test_rejects_out_of_order_chunks(self):
        spans = (ChunkSpan(chunk_id=1, first_block=0, num_blocks=4),)
        with pytest.raises(ValueError):
            ChunkDirectory(spans, 4)


class TestVictimSelection:
    def _directory(self):
        d = make_directory((32, 32, 32, 32))
        d.occupancy[:] = (32, 32, 16, 0)
        d.last_touch[:] = (3, 1, 2, 0)
        return d

    def test_zero_needed_returns_empty(self):
        d = self._directory()
        assert select_victims(d, 0, ReplacementPolicy.LRU,
                              np.zeros(4, bool)) == []

    def test_lru_prefers_oldest_full_chunk(self):
        d = self._directory()
        victims = select_victims(d, 1, ReplacementPolicy.LRU,
                                 np.zeros(4, bool))
        assert victims == [1]

    def test_lru_falls_back_to_partial(self):
        d = self._directory()
        d.occupancy[:] = (0, 0, 16, 0)   # no full chunk exists
        victims = select_victims(d, 1, ReplacementPolicy.LRU,
                                 np.zeros(4, bool))
        assert victims == [2]

    def test_pinned_avoided_when_possible(self):
        d = self._directory()
        pinned = np.array([False, True, False, False])
        victims = select_victims(d, 1, ReplacementPolicy.LRU, pinned)
        assert victims == [0]  # oldest *unpinned* full chunk

    def test_pinned_used_as_last_resort(self):
        d = self._directory()
        pinned = np.ones(4, dtype=bool)
        victims = select_victims(d, 1, ReplacementPolicy.LRU, pinned)
        assert victims == [1]

    def test_never_mask_is_absolute(self):
        d = self._directory()
        never = np.array([False, True, False, False])
        victims = select_victims(d, 1, ReplacementPolicy.LRU,
                                 np.ones(4, bool), never=never)
        assert 1 not in victims

    def test_accumulates_until_enough(self):
        d = self._directory()
        victims = select_victims(d, 40, ReplacementPolicy.LRU,
                                 np.zeros(4, bool))
        assert victims == [1, 0]  # 32 + 32 >= 40

    def test_impossible_raises(self):
        d = self._directory()
        with pytest.raises(RuntimeError):
            select_victims(d, 1000, ReplacementPolicy.LRU,
                           np.zeros(4, bool))

    def test_lfu_prefers_cold(self):
        d = self._directory()
        heat = np.array([0, 10, 0, 0])
        dirty = np.zeros(4, dtype=bool)
        victims = select_victims(d, 1, ReplacementPolicy.LFU,
                                 np.zeros(4, bool), heat=heat,
                                 dirty_any=dirty)
        assert victims == [0]  # colder than chunk 1 despite newer touch

    def test_lfu_prefers_clean_on_heat_tie(self):
        d = self._directory()
        heat = np.array([5, 5, 0, 0])
        dirty = np.array([True, False, False, False])
        victims = select_victims(d, 1, ReplacementPolicy.LFU,
                                 np.zeros(4, bool), heat=heat,
                                 dirty_any=dirty)
        assert victims == [1]

    def test_lfu_degenerates_to_lru_on_full_tie(self):
        d = self._directory()
        heat = np.array([5, 5, 0, 0])
        dirty = np.zeros(4, dtype=bool)
        victims = select_victims(d, 1, ReplacementPolicy.LFU,
                                 np.zeros(4, bool), heat=heat,
                                 dirty_any=dirty)
        assert victims == [1]  # older of the two equal-heat chunks

    def test_lfu_requires_heat(self):
        d = self._directory()
        with pytest.raises(ValueError):
            select_victims(d, 1, ReplacementPolicy.LFU, np.zeros(4, bool))
