"""Unit tests for the ``repro top`` dashboard."""

import gzip
import io
import json

import pytest

from repro.cli import build_parser, main
from repro.obs.events import (
    AlertFired,
    RunMeta,
    SloAttainment,
    SloViolation,
    TelemetryWindow,
    TenantArrival,
    TenantComplete,
)
from repro.obs.live.top import render_top, run_top
from repro.obs.inspect import summarize


def write_log(path, events):
    with open(path, "w") as fh:
        for ev in events:
            fh.write(json.dumps(ev.as_dict()) + "\n")


@pytest.fixture
def serve_log(tmp_path):
    """A small synthetic serve log with live-telemetry events."""
    path = tmp_path / "serve.jsonl"
    write_log(path, [
        RunMeta(workload="serve:ra+bfs", policy="adaptive", seed=7,
                total_blocks=512, capacity_blocks=256, allocations=(),
                backend="python"),
        TenantArrival(tenant=0, workload="ra", at_us=0.0,
                      footprint_mb=16.0),
        TenantArrival(tenant=1, workload="bfs", at_us=10.0,
                      footprint_mb=10.0),
        TelemetryWindow(tenant=0, start_us=0.0, window_us=5000.0,
                        waves=8, accesses=4096, mean_latency_us=120.0,
                        max_latency_us=410.0, bad_waves=2,
                        ewma_latency_us=130.5, thrash_rate=0.75),
        SloViolation(tenant=0, at_us=5000.0, objective="p99_latency",
                     burn_fast=4.0, burn_slow=2.5, value=410.0,
                     target=300.0),
        SloViolation(tenant=-1, at_us=6000.0, objective="shed_rate",
                     burn_fast=8.0, burn_slow=3.0, value=0.5,
                     target=0.1),
        AlertFired(name="thrash_pressure", at_us=6000.0, tenant=-1,
                   metric="serve.thrash_per_wave", value=0.9,
                   threshold=0.25, state="firing"),
        SloAttainment(tenant=0, at_us=9000.0, objective="p99_latency",
                      attainment=0.75, target=0.95, met=False),
        TenantComplete(tenant=0, at_us=9000.0, waves=8, freed_blocks=256,
                       writeback_blocks=10, p99_wave_latency_us=410.0),
        SloAttainment(tenant=-1, at_us=9500.0, objective="shed_rate",
                      attainment=0.5, target=0.9, met=False),
    ])
    return path


class TestRenderTop:
    def test_frame_contents(self, serve_log):
        frame = render_top(summarize(serve_log), str(serve_log))
        assert "repro top" in frame and "seed 7" in frame
        assert "windows: 1" in frame
        assert "violations: 2" in frame
        assert "alerts: 1" in frame
        assert "thrash_pressurex1" in frame
        assert "0.750 MISS" in frame          # tenant 0's SLO verdict
        assert "130.5" in frame               # EWMA latency column
        assert "service shed_rate: 0.500 (MISSED)" in frame

    def test_frame_is_a_pure_function_of_the_log(self, serve_log):
        a = render_top(summarize(serve_log), str(serve_log))
        b = render_top(summarize(serve_log), str(serve_log))
        assert a == b

    def test_empty_log_renders(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        frame = render_top(summarize(path), str(path))
        assert "no tenant events yet" in frame


class TestRunTop:
    def test_one_shot(self, serve_log):
        out = io.StringIO()
        assert run_top(serve_log, out=out) == 0
        assert "repro top" in out.getvalue()

    def test_rejects_gzip_logs(self, tmp_path, capsys):
        path = tmp_path / "serve.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("{}\n")
        assert run_top(path) == 2
        assert "cannot tail" in capsys.readouterr().err

    def test_follow_bounded_frames(self, serve_log):
        out = io.StringIO()
        rc = run_top(serve_log, follow=True, interval=0.0, frames=3,
                     out=out)
        assert rc == 0
        assert out.getvalue().count("repro top") == 3

    def test_follow_stops_when_log_stops_growing(self, serve_log):
        out = io.StringIO()
        rc = run_top(serve_log, follow=True, interval=0.0, out=out)
        assert rc == 0
        # First frame, then one confirming frame with no growth.
        assert out.getvalue().count("repro top") == 2


class TestCliDispatch:
    def test_parser(self, serve_log):
        args = build_parser().parse_args(
            ["top", str(serve_log), "--follow", "--interval", "0.1",
             "--frames", "2"])
        assert args.follow and args.interval == 0.1 and args.frames == 2

    def test_main_one_shot(self, serve_log, capsys):
        assert main(["top", str(serve_log)]) == 0
        assert "repro top" in capsys.readouterr().out

    def test_main_gz_exit_code(self, tmp_path, capsys):
        path = tmp_path / "x.jsonl.gz"
        with gzip.open(path, "wt") as fh:
            fh.write("{}\n")
        assert main(["top", str(path)]) == 2
