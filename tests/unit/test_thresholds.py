"""Unit tests for the migration-threshold rules (Equation 1)."""

import numpy as np
import pytest

from repro.uvm import thresholds as th


class TestFirstTouch:
    def test_all_ones(self):
        assert list(th.first_touch_thresholds(3)) == [1, 1, 1]


class TestStatic:
    def test_constant(self):
        assert list(th.static_thresholds(3, 8)) == [8, 8, 8]

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            th.static_thresholds(1, 0)


class TestDynamicNoOversub:
    """The worked example in Section IV with ts = 8."""

    def test_below_one_eighth_occupancy_is_first_touch(self):
        assert th.dynamic_threshold_no_oversub(8, 0.0) == 1
        assert th.dynamic_threshold_no_oversub(8, 0.124) == 1

    def test_grows_with_occupancy(self):
        assert th.dynamic_threshold_no_oversub(8, 0.125) == 2
        assert th.dynamic_threshold_no_oversub(8, 0.5) == 5

    def test_just_before_full_equals_ts(self):
        assert th.dynamic_threshold_no_oversub(8, 0.99) == 8

    def test_at_full_capacity_is_ts_plus_one(self):
        assert th.dynamic_threshold_no_oversub(8, 1.0) == 9

    def test_rejects_bad_occupancy(self):
        with pytest.raises(ValueError):
            th.dynamic_threshold_no_oversub(8, 1.5)
        with pytest.raises(ValueError):
            th.dynamic_threshold_no_oversub(8, -0.1)


class TestDynamicOversub:
    """td = ts * (r + 1) * p (Equation 1, second branch)."""

    def test_no_roundtrips(self):
        td = th.dynamic_thresholds_oversub(8, np.array([0]), 2)
        assert td[0] == 16  # paper: "migrated after 16th access"

    def test_two_evictions_example(self):
        td = th.dynamic_thresholds_oversub(8, np.array([2]), 2)
        assert td[0] == 48  # paper: "threshold ... derived as 48"

    def test_vectorized(self):
        td = th.dynamic_thresholds_oversub(8, np.array([0, 1, 3]), 8)
        assert list(td) == [64, 128, 256]

    def test_monotone_in_roundtrips(self):
        r = np.arange(10)
        td = th.dynamic_thresholds_oversub(8, r, 4)
        assert np.all(np.diff(td) > 0)

    def test_rejects_negative_roundtrips(self):
        with pytest.raises(ValueError):
            th.dynamic_thresholds_oversub(8, np.array([-1]), 2)

    def test_rejects_bad_penalty(self):
        with pytest.raises(ValueError):
            th.dynamic_thresholds_oversub(8, np.array([0]), 0)
