"""Unit tests for the resilient grid runner and its CLI surface."""

import pytest

from repro.analysis import parallel
from repro.analysis.parallel import (
    GridCell,
    GridExecutionError,
    GridOptions,
    default_jobs,
    run_grid,
)
from repro.cli import main
from repro.config import MigrationPolicy

TINY = GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny")


class TestDefaultJobs:
    def test_positive(self):
        assert default_jobs() >= 1

    def test_respects_affinity(self, monkeypatch):
        monkeypatch.setattr(parallel.os, "sched_getaffinity",
                            lambda pid: {0, 1, 2}, raising=False)
        assert default_jobs() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delattr(parallel.os, "sched_getaffinity",
                            raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 5)
        assert default_jobs() == 5

    def test_last_resort_is_one(self, monkeypatch):
        monkeypatch.delattr(parallel.os, "sched_getaffinity",
                            raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert default_jobs() == 1


class TestGridOptions:
    def test_defaults(self):
        opts = GridOptions()
        assert opts.retries == 2 and not opts.resume

    @pytest.mark.parametrize("kwargs,match", [
        ({"retries": -1}, "retries"),
        ({"retry_backoff_s": -0.5}, "retry_backoff_s"),
        ({"cell_timeout": 0}, "cell_timeout"),
        ({"resume": True}, "resume requires a checkpoint"),
    ])
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            GridOptions(**kwargs)


class TestRunGridGuards:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="max_workers must be >= 0"):
            run_grid([TINY], max_workers=-2)

    def test_empty_grid(self):
        assert run_grid([], max_workers=4) == []


class TestSerialRetry:
    def test_flaky_cell_retried(self, monkeypatch):
        calls = {"n": 0}
        real = parallel.run_cell

        def flaky(cell):
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient resource exhaustion")
            return real(cell)

        monkeypatch.setattr(parallel, "run_cell", flaky)
        opts = GridOptions(retries=2, retry_backoff_s=0.0)
        results = run_grid([TINY], max_workers=1, options=opts)
        assert calls["n"] == 3
        assert results[0].total_cycles > 0

    def test_budget_exhaustion_raises(self, monkeypatch):
        def always_fails(cell):
            raise OSError("permanently broken")

        monkeypatch.setattr(parallel, "run_cell", always_fails)
        opts = GridOptions(retries=1, retry_backoff_s=0.0)
        with pytest.raises(GridExecutionError) as exc:
            run_grid([TINY], max_workers=1, options=opts)
        assert exc.value.attempts == 2
        assert exc.value.cell == TINY

    def test_zero_retries_fails_fast(self, monkeypatch):
        calls = {"n": 0}

        def fails(cell):
            calls["n"] += 1
            raise RuntimeError("boom")

        monkeypatch.setattr(parallel, "run_cell", fails)
        with pytest.raises(GridExecutionError):
            run_grid([TINY], max_workers=1,
                     options=GridOptions(retries=0, retry_backoff_s=0.0))
        assert calls["n"] == 1


class TestPoolFallback:
    def test_unavailable_pool_degrades_to_serial(self, monkeypatch):
        """No process-pool support at all must not abort the sweep."""
        def no_pools(*args, **kwargs):
            raise OSError("semaphores unavailable")

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", no_pools)
        cells = [TINY, GridCell("ra", MigrationPolicy.DISABLED, 1.25,
                                "tiny")]
        results = run_grid(cells, max_workers=4)
        assert all(r is not None for r in results)

    def test_persistently_broken_pool_degrades_to_serial(self, monkeypatch):
        """A pool that always breaks mid-flight falls back, not aborts."""
        from concurrent.futures.process import BrokenProcessPool

        class AlwaysBroken:
            def __init__(self, *args, **kwargs):
                pass

            def submit(self, *args, **kwargs):
                raise BrokenProcessPool("worker died")

            def shutdown(self, *args, **kwargs):
                pass

        monkeypatch.setattr(parallel, "ProcessPoolExecutor", AlwaysBroken)
        results = run_grid([TINY, TINY], max_workers=2,
                           options=GridOptions(retry_backoff_s=0.0))
        assert all(r is not None for r in results)


class TestCliGuards:
    def test_negative_jobs_clear_error(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["sweep", "ra", "--jobs", "-3"])
        assert exc.value.code == 2
        assert "--jobs must be >= 0" in capsys.readouterr().err

    def test_unknown_workload_lists_registry(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "definitely-not-a-workload"])
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "ra" in err and "pagerank" in err

    def test_resume_without_checkpoint_rejected(self):
        with pytest.raises(SystemExit, match="resume requires a checkpoint"):
            main(["sweep", "ra", "--scale", "tiny", "--resume"])

    def test_invalid_fault_rate_rejected(self):
        with pytest.raises(SystemExit, match="transfer_fault_rate"):
            main(["run", "ra", "--scale", "tiny", "--fault-rate", "1.0"])
