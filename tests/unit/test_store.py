"""Unit tests for the content-addressed run archive (repro.obs.store)."""

import dataclasses
import gzip
import json
import os

import pytest

from repro.analysis.checkpoint import encode_config
from repro.config import MigrationPolicy, SimulationConfig
from repro.obs import JsonlSink, Observability
from repro.obs.store import (
    RunManifest,
    RunStore,
    config_fingerprint,
    derive_sweep_id,
    git_info,
    host_info,
)
from repro.sim.simulator import Simulator
from repro.workloads import make_workload


@pytest.fixture(scope="module")
def run_result():
    cfg = SimulationConfig(seed=3).with_policy(MigrationPolicy.ADAPTIVE)
    return cfg, Simulator(cfg).run(make_workload("ra", scale="tiny"),
                                   oversubscription=1.5)


def _manifest(cfg, seed=3, **overrides):
    kwargs = dict(kind="run", workload="ra", policy="adaptive",
                  scale="tiny", seed=seed, oversubscription=1.5,
                  config=encode_config(cfg))
    kwargs.update(overrides)
    return RunManifest.create(**kwargs)


class TestManifest:
    def test_run_id_is_content_addressed(self, run_result):
        cfg, _ = run_result
        a, b = _manifest(cfg), _manifest(cfg)
        assert a.run_id == b.run_id
        assert len(a.run_id) == 12

    def test_run_id_changes_with_identity(self, run_result):
        cfg, _ = run_result
        assert _manifest(cfg).run_id != _manifest(cfg, seed=4).run_id
        assert (_manifest(cfg).run_id
                != _manifest(cfg, sweep_id="abc").run_id)

    def test_provenance_does_not_perturb_the_id(self, run_result):
        cfg, _ = run_result
        a = _manifest(cfg, host={"machine": "x"})
        b = _manifest(cfg, host={"machine": "y"})
        assert a.run_id == b.run_id

    def test_round_trips_through_dict(self, run_result):
        cfg, _ = run_result
        m = _manifest(cfg)
        again = RunManifest.from_dict(json.loads(json.dumps(m.as_dict())))
        assert again == m

    def test_config_hash_matches_fingerprint(self, run_result):
        cfg, _ = run_result
        m = _manifest(cfg)
        assert m.config_hash == config_fingerprint(encode_config(cfg))


class TestRunStore:
    def test_archive_and_load_round_trip(self, run_result, tmp_path):
        cfg, result = run_result
        store = RunStore(tmp_path)
        manifest = _manifest(cfg)
        run_id = store.archive(manifest, result,
                               metrics={"x": {"value": 1}})
        loaded = store.load(run_id)
        assert loaded.manifest == manifest
        assert loaded.metrics == {"x": {"value": 1}}
        assert loaded.events_path is None
        assert dataclasses.asdict(loaded.result.events) == \
            dataclasses.asdict(result.events)
        assert loaded.result.total_cycles == result.total_cycles

    def test_rearchive_is_idempotent(self, run_result, tmp_path):
        cfg, result = run_result
        store = RunStore(tmp_path)
        a = store.archive(_manifest(cfg), result, metrics={"x": 1})
        b = store.archive(_manifest(cfg), result)
        assert a == b
        assert len(store.list()) == 1
        # the second archive must not inherit the first one's metrics
        assert store.load(a).metrics is None

    def test_prefix_resolution(self, run_result, tmp_path):
        cfg, result = run_result
        store = RunStore(tmp_path)
        run_id = store.archive(_manifest(cfg), result)
        assert store.resolve(run_id[:6]) == run_id
        assert run_id[:4] in store
        with pytest.raises(KeyError, match="no archived run"):
            store.resolve("zzzz")

    def test_ambiguous_prefix_raises(self, run_result, tmp_path):
        cfg, result = run_result
        store = RunStore(tmp_path)
        store.archive(_manifest(cfg), result)
        store.archive(_manifest(cfg, seed=4), result)
        with pytest.raises(KeyError, match="ambiguous"):
            store.resolve("")

    def test_uncommitted_run_is_invisible(self, run_result, tmp_path):
        cfg, result = run_result
        store = RunStore(tmp_path)
        writer = store.open_run(_manifest(cfg))
        # no commit: the directory exists but carries no manifest
        assert os.path.isdir(writer.dir)
        assert store.list() == []
        assert _manifest(cfg).run_id not in store
        writer.commit(result)
        assert len(store.list()) == 1

    def test_event_log_streams_into_the_archive(self, run_result, tmp_path):
        cfg, _ = run_result
        store = RunStore(tmp_path)
        writer = store.open_run(_manifest(cfg))
        assert writer.events_path.endswith("events.jsonl.gz")
        obs = Observability()
        obs.bus.attach(JsonlSink(writer.events_path))
        result = Simulator(cfg).run(make_workload("ra", scale="tiny"),
                                    oversubscription=1.5, obs=obs)
        obs.close()
        run_id = writer.commit(result)
        loaded = store.load(run_id)
        assert loaded.events_path is not None
        with gzip.open(loaded.events_path, "rt") as fh:
            first = json.loads(fh.readline())
        assert first["event"] == "run_meta"

    def test_env_var_names_the_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "alt"))
        assert RunStore().root == str(tmp_path / "alt")
        assert RunStore(tmp_path / "explicit").root == \
            str(tmp_path / "explicit")

    def test_missing_root_lists_empty(self, tmp_path):
        assert RunStore(tmp_path / "nowhere").list() == []


class TestProvenance:
    def test_git_info_in_a_repo(self):
        info = git_info(cwd=os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__)))))
        # the test tree lives in a git checkout
        assert info is not None and len(info["sha"]) == 40
        assert isinstance(info["dirty"], bool)

    def test_git_info_outside_a_repo(self, tmp_path):
        assert git_info(cwd=tmp_path) is None

    def test_host_info_shape(self):
        info = host_info()
        assert set(info) == {"python", "machine", "cpus"}


class TestSweepId:
    def test_order_independent(self):
        from repro.analysis import GridCell
        cells = [GridCell("ra", MigrationPolicy.ADAPTIVE, 1.25, "tiny"),
                 GridCell("ra", MigrationPolicy.DISABLED, 1.25, "tiny")]
        assert derive_sweep_id(cells) == derive_sweep_id(cells[::-1])
        assert derive_sweep_id(cells) != derive_sweep_id(cells[:1])
