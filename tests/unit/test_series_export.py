"""Unit tests for SeriesResult exports (rows/CSV)."""

from repro.analysis.experiments import SeriesResult


def make_series():
    return SeriesResult(
        "Figure 6", "test",
        measured={"always": {"ra": 0.3, "nw": 0.8},
                  "adaptive": {"ra": 0.1, "nw": 0.5}},
        paper={"adaptive": {"ra": 0.22}})


class TestToRows:
    def test_one_row_per_cell(self):
        rows = make_series().to_rows()
        assert len(rows) == 4
        keys = {(r["series"], r["workload"]) for r in rows}
        assert ("adaptive", "ra") in keys

    def test_paper_reference_attached(self):
        rows = {(r["series"], r["workload"]): r
                for r in make_series().to_rows()}
        assert rows[("adaptive", "ra")]["paper"] == 0.22
        assert rows[("always", "ra")]["paper"] is None


class TestToCsv:
    def test_header_and_rows(self):
        csv = make_series().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "figure,series,workload,measured,paper"
        assert len(lines) == 5

    def test_missing_paper_is_empty_field(self):
        csv = make_series().to_csv()
        always_ra = [l for l in csv.splitlines()
                     if l.startswith("Figure 6,always,ra")][0]
        assert always_ra.endswith(",")

    def test_round_trippable_numbers(self):
        csv = make_series().to_csv()
        adaptive_ra = [l for l in csv.splitlines()
                       if l.startswith("Figure 6,adaptive,ra")][0]
        fields = adaptive_ra.split(",")
        assert float(fields[3]) == 0.1
        assert float(fields[4]) == 0.22
