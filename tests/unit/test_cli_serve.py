"""Unit tests for the ``repro serve`` command."""

import json

import pytest

from repro.cli import build_parser, main


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.arrival_rate == 400.0
        assert args.tenants == 12
        assert args.process == "poisson"
        assert args.shed_watermark == 2.5
        assert args.mix == "ra,sssp,bfs,fdtd"

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--arrival-rate", "2000", "--tenants", "6",
             "--duration", "50", "--process", "bursty",
             "--shed-watermark", "2.0", "--queue-depth", "3",
             "--mix", "ra,bfs", "--capacity-mb", "24"])
        assert args.arrival_rate == 2000.0
        assert args.tenants == 6
        assert args.duration == 50.0
        assert args.process == "bursty"
        assert args.queue_depth == 3

    def test_unknown_process_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--process", "sawtooth"])


class TestServeExecution:
    def test_serve_prints_summary(self, capsys):
        rc = main(["serve", "--tenants", "3", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== serve:" in out
        assert "per-tenant lifecycle" in out
        assert "peak live oversubscription" in out

    def test_serve_json(self, capsys):
        rc = main(["serve", "--tenants", "3", "--seed", "0", "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["arrivals"] == 3
        assert len(d["tenants"]) == 3
        assert d["config"]["seed"] == 0

    def test_serve_json_deterministic(self, capsys):
        main(["serve", "--tenants", "3", "--seed", "5", "--json"])
        a = capsys.readouterr().out
        main(["serve", "--tenants", "3", "--seed", "5", "--json"])
        b = capsys.readouterr().out
        assert a == b

    def test_invalid_mix_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--tenants", "3", "--mix", "ra,nosuch"])

    def test_invalid_watermarks_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--tenants", "3", "--admit-watermark", "3.0",
                  "--shed-watermark", "2.0"])

    def test_serve_events_log(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        rc = main(["serve", "--tenants", "3", "--seed", "0",
                   "--events", str(path)])
        assert rc == 0
        kinds = {json.loads(line)["event"]
                 for line in path.read_text().splitlines() if line}
        assert {"run_meta", "tenant_arrival", "tenant_admitted",
                "tenant_complete"} <= kinds

    def test_serve_inspect_round_trip(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        main(["serve", "--tenants", "3", "--seed", "0",
              "--events", str(path)])
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tenants (serve log)" in out

    def test_serve_archives(self, tmp_path, capsys):
        rc = main(["serve", "--tenants", "3", "--seed", "0",
                   "--archive", "--runs", str(tmp_path)])
        assert rc == 0
        assert main(["runs", "--runs", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "serve" in out
