"""Unit tests for the ``repro serve`` command."""

import json

import pytest

from repro.cli import build_parser, main


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.arrival_rate == 400.0
        assert args.tenants == 12
        assert args.process == "poisson"
        assert args.shed_watermark == 2.5
        assert args.mix == "ra,sssp,bfs,fdtd"

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["serve", "--arrival-rate", "2000", "--tenants", "6",
             "--duration", "50", "--process", "bursty",
             "--shed-watermark", "2.0", "--queue-depth", "3",
             "--mix", "ra,bfs", "--capacity-mb", "24"])
        assert args.arrival_rate == 2000.0
        assert args.tenants == 6
        assert args.duration == 50.0
        assert args.process == "bursty"
        assert args.queue_depth == 3

    def test_unknown_process_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--process", "sawtooth"])


class TestServeExecution:
    def test_serve_prints_summary(self, capsys):
        rc = main(["serve", "--tenants", "3", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "== serve:" in out
        assert "per-tenant lifecycle" in out
        assert "peak live oversubscription" in out

    def test_serve_json(self, capsys):
        rc = main(["serve", "--tenants", "3", "--seed", "0", "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["arrivals"] == 3
        assert len(d["tenants"]) == 3
        assert d["config"]["seed"] == 0

    def test_serve_json_deterministic(self, capsys):
        main(["serve", "--tenants", "3", "--seed", "5", "--json"])
        a = capsys.readouterr().out
        main(["serve", "--tenants", "3", "--seed", "5", "--json"])
        b = capsys.readouterr().out
        assert a == b

    def test_invalid_mix_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--tenants", "3", "--mix", "ra,nosuch"])

    def test_invalid_watermarks_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--tenants", "3", "--admit-watermark", "3.0",
                  "--shed-watermark", "2.0"])

    def test_serve_events_log(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        rc = main(["serve", "--tenants", "3", "--seed", "0",
                   "--events", str(path)])
        assert rc == 0
        kinds = {json.loads(line)["event"]
                 for line in path.read_text().splitlines() if line}
        assert {"run_meta", "tenant_arrival", "tenant_admitted",
                "tenant_complete"} <= kinds

    def test_serve_inspect_round_trip(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        main(["serve", "--tenants", "3", "--seed", "0",
              "--events", str(path)])
        capsys.readouterr()
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "tenants (serve log)" in out

    def test_serve_archives(self, tmp_path, capsys):
        rc = main(["serve", "--tenants", "3", "--seed", "0",
                   "--archive", "--runs", str(tmp_path)])
        assert rc == 0
        assert main(["runs", "--runs", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "serve" in out


#: Hot enough for SLO violations and alerts at this seed.
OVERLOAD_FLAGS = ["serve", "--tenants", "8", "--seed", "1",
                  "--arrival-rate", "2000", "--capacity-mb", "24",
                  "--queue-depth", "2", "--throttle-watermark", "1.0",
                  "--admit-watermark", "1.6", "--shed-watermark", "2.0"]


def write_slo_yaml(tmp_path, body=None):
    path = tmp_path / "slo.yaml"
    path.write_text(body if body is not None else
                    "slo:\n"
                    "  p99_latency_us: 300.0\n"
                    "  latency_attainment: 0.95\n"
                    "  max_shed_rate: 0.1\n")
    return path


class TestServeSlo:
    def test_slo_config_enables_telemetry(self, tmp_path, capsys):
        slo = write_slo_yaml(tmp_path)
        rc = main(OVERLOAD_FLAGS + ["--slo-config", str(slo), "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["slo_violations"] > 0

    def test_slo_config_accepts_flat_keys(self, tmp_path, capsys):
        slo = write_slo_yaml(tmp_path, "p99_latency_us: 300.0\n")
        rc = main(OVERLOAD_FLAGS + ["--slo-config", str(slo), "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["slo_violations"] > 0

    def test_slo_config_rejects_unknown_key(self, tmp_path):
        slo = write_slo_yaml(tmp_path, "p99_latencyus: 300.0\n")
        with pytest.raises(SystemExit, match="unknown SLO key"):
            main(OVERLOAD_FLAGS + ["--slo-config", str(slo)])

    def test_slo_config_rejects_no_objectives(self, tmp_path):
        slo = write_slo_yaml(tmp_path, "fast_windows: 2\n")
        with pytest.raises(SystemExit, match="no\\s+objective"):
            main(OVERLOAD_FLAGS + ["--slo-config", str(slo)])

    def test_live_admission_off_matches_bare_run(self, tmp_path, capsys):
        """--slo-config must not perturb the simulated schedule."""
        slo = write_slo_yaml(tmp_path)
        main(OVERLOAD_FLAGS + ["--json"])
        bare = json.loads(capsys.readouterr().out)
        main(OVERLOAD_FLAGS + ["--slo-config", str(slo), "--json"])
        with_slo = json.loads(capsys.readouterr().out)
        for key in ("slo_violations", "alerts_fired"):
            bare.pop(key), with_slo.pop(key)
        assert bare == with_slo

    def test_live_admission_flag_runs(self, tmp_path, capsys):
        slo = write_slo_yaml(tmp_path)
        rc = main(OVERLOAD_FLAGS + ["--slo-config", str(slo),
                                    "--live-admission",
                                    "--live-thrash-threshold", "0.05",
                                    "--window-ms", "2.0", "--json"])
        assert rc == 0
        d = json.loads(capsys.readouterr().out)
        assert d["config"]["live_admission"] is True
        assert d["config"]["live_thrash_threshold"] == 0.05
        assert d["config"]["window_ms"] == 2.0

    def test_scenario_slo_section_flows_through(self, tmp_path, capsys):
        scenario = tmp_path / "s.yaml"
        scenario.write_text(
            "name: slo-smoke\nmode: serve\nseed: 1\n"
            "serve:\n  tenants: 8\n  arrival_rate: 2000.0\n"
            "  capacity_mb: 24\n  queue_depth: 2\n"
            "  throttle_watermark: 1.0\n  admit_watermark: 1.6\n"
            "  shed_watermark: 2.0\n"
            "slo:\n  p99_latency_us: 300.0\n  latency_attainment: 0.95\n")
        rc = main(["serve", "--config", str(scenario), "--json"])
        assert rc == 0
        assert json.loads(capsys.readouterr().out)["slo_violations"] > 0

    def test_prom_export(self, tmp_path, capsys):
        out = tmp_path / "m.prom"
        rc = main(["serve", "--tenants", "3", "--seed", "0",
                   "--prom", str(out)])
        assert rc == 0
        text = out.read_text()
        assert "serve_waves_total" in text
        assert text.endswith("# EOF\n")

    def test_flush_events_tailable_then_top(self, tmp_path, capsys):
        path = tmp_path / "ev.jsonl"
        slo = write_slo_yaml(tmp_path)
        main(OVERLOAD_FLAGS + ["--slo-config", str(slo),
                               "--events", str(path),
                               "--flush-events", "1"])
        capsys.readouterr()
        assert main(["top", str(path)]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out and "slo att" in out

    def test_flush_events_rejects_gz(self, tmp_path):
        path = tmp_path / "ev.jsonl.gz"
        with pytest.raises((SystemExit, ValueError)):
            main(["serve", "--tenants", "3", "--events", str(path),
                  "--flush-events", "1"])
