"""Unit tests for workload utilities and graph generation."""

import numpy as np
import pytest

from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import CHUNK_SIZE
from repro.workloads.graphs import random_graph
from repro.workloads.util import (
    SECTORS_PER_PAGE,
    coalesced_pages,
    dedupe_with_counts,
    ragged_ranges,
)


class TestRaggedRanges:
    def test_basic(self):
        out = ragged_ranges(np.array([0, 10]), np.array([3, 2]))
        assert list(out) == [0, 1, 2, 10, 11]

    def test_zero_lengths_skipped(self):
        out = ragged_ranges(np.array([5, 7, 9]), np.array([0, 2, 0]))
        assert list(out) == [7, 8]

    def test_empty(self):
        out = ragged_ranges(np.array([], dtype=np.int64),
                            np.array([], dtype=np.int64))
        assert out.size == 0

    def test_single_range(self):
        assert list(ragged_ranges(np.array([4]), np.array([4]))) == [4, 5, 6, 7]

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            ragged_ranges(np.array([0]), np.array([-1]))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ragged_ranges(np.array([0, 1]), np.array([1]))

    def test_matches_naive_concatenation(self):
        rng = np.random.default_rng(0)
        starts = rng.integers(0, 1000, size=50)
        lens = rng.integers(0, 10, size=50)
        expected = np.concatenate(
            [np.arange(s, s + l) for s, l in zip(starts, lens)] or [[]])
        assert np.array_equal(ragged_ranges(starts, lens), expected)


class TestDedupe:
    def test_counts(self):
        pages, counts = dedupe_with_counts(np.array([3, 1, 3, 3]))
        assert list(pages) == [1, 3]
        assert list(counts) == [1, 3]

    def test_empty(self):
        pages, counts = dedupe_with_counts(np.array([], dtype=np.int64))
        assert pages.size == 0 and counts.size == 0


class TestCoalescedPages:
    def _alloc(self):
        return VirtualAddressSpace().malloc_managed("a", CHUNK_SIZE)

    def test_same_sector_collapses(self):
        a = self._alloc()
        # 16 consecutive 8-byte elements = one 128B sector.
        pages, counts = coalesced_pages(a, np.arange(16) * 8)
        assert pages.size == 1
        assert counts[0] == 1

    def test_scattered_sectors_counted(self):
        a = self._alloc()
        offs = np.array([0, 128, 4096])   # two sectors page 0, one page 1
        pages, counts = coalesced_pages(a, offs)
        assert list(pages) == [a.first_page, a.first_page + 1]
        assert list(counts) == [2, 1]

    def test_accesses_per_sector_multiplier(self):
        a = self._alloc()
        _, counts = coalesced_pages(a, np.array([0]), accesses_per_sector=3)
        assert counts[0] == 3

    def test_empty(self):
        a = self._alloc()
        pages, counts = coalesced_pages(a, np.array([], dtype=np.int64))
        assert pages.size == 0

    def test_sectors_per_page_constant(self):
        assert SECTORS_PER_PAGE == 32


class TestRandomGraph:
    def test_structure_valid(self):
        g = random_graph(1000, 4.0, np.random.default_rng(0))
        g.validate()
        assert g.num_nodes == 1000
        assert g.num_edges == g.ptr[-1]

    def test_average_degree(self):
        g = random_graph(10_000, 8.0, np.random.default_rng(1))
        assert g.degrees().mean() == pytest.approx(8.0, rel=0.05)

    def test_chain_guarantees_reachability(self):
        g = random_graph(500, 2.0, np.random.default_rng(2))
        # Follow the chain edge (first edge of each node).
        seen = {0}
        node = 0
        for _ in range(500):
            node = int(g.dst[g.ptr[node]])
            seen.add(node)
        assert len(seen) == 500

    def test_skew_concentrates_destinations(self):
        rng = np.random.default_rng(3)
        uniform = random_graph(10_000, 8.0, rng, skew=0.0,
                               connect_chain=False)
        skewed = random_graph(10_000, 8.0, rng, skew=0.6,
                              connect_chain=False)
        # Top-1% most popular destinations take a larger share when skewed.
        def top_share(g):
            counts = np.bincount(g.dst, minlength=g.num_nodes)
            counts.sort()
            return counts[-100:].sum() / g.num_edges
        assert top_share(skewed) > 2 * top_share(uniform)

    def test_deterministic_for_seed(self):
        a = random_graph(100, 4.0, np.random.default_rng(42))
        b = random_graph(100, 4.0, np.random.default_rng(42))
        assert np.array_equal(a.dst, b.dst)
        assert np.array_equal(a.weights, b.weights)

    def test_rejects_bad_args(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_graph(1, 4.0, rng)
        with pytest.raises(ValueError):
            random_graph(10, 0.5, rng)
        with pytest.raises(ValueError):
            random_graph(10, 4.0, rng, skew=1.0)
