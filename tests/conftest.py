"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import MigrationPolicy, SimulationConfig
from repro.memory.allocator import VirtualAddressSpace
from repro.memory.layout import MB
from repro.uvm.driver import UvmDriver
from repro.workloads.base import (
    Category,
    KernelLaunch,
    Wave,
    WaveBuilder,
    Workload,
    chunked,
)


def make_vas(*sizes_mb: float, read_only: tuple[bool, ...] | None = None
             ) -> VirtualAddressSpace:
    """VA space with one allocation per size (in MB)."""
    vas = VirtualAddressSpace()
    ro = read_only or (False,) * len(sizes_mb)
    for i, (size, r) in enumerate(zip(sizes_mb, ro)):
        vas.malloc_managed(f"alloc{i}", int(size * MB), read_only=r)
    return vas


def make_driver(vas: VirtualAddressSpace,
                policy: MigrationPolicy = MigrationPolicy.DISABLED,
                capacity_mb: float = 64, ts: int = 8, p: int = 8,
                prefetcher: bool = True) -> UvmDriver:
    """Driver over ``vas`` with the given policy and capacity."""
    cfg = SimulationConfig().with_policy(policy, static_threshold=ts,
                                         migration_penalty=p)
    cfg = cfg.with_device_capacity(int(capacity_mb * MB))
    if not prefetcher:
        import dataclasses
        cfg = dataclasses.replace(
            cfg, memory=dataclasses.replace(cfg.memory,
                                            prefetcher_enabled=False))
    return UvmDriver(vas, cfg)


class StreamWorkload(Workload):
    """Minimal synthetic workload: N iterations of a linear sweep."""

    name = "stream"
    category = Category.REGULAR

    def __init__(self, size_mb: float = 8, iterations: int = 2,
                 wave_pages: int = 256, write_fraction: float = 0.5,
                 accesses_per_page: int = 32) -> None:
        super().__init__()
        self.size_mb = size_mb
        self.iterations = iterations
        self.wave_pages = wave_pages
        self.write_fraction = write_fraction
        self.accesses_per_page = accesses_per_page

    def _allocate(self, vas, rng) -> None:
        self.data = self._register(
            vas.malloc_managed("stream.data", int(self.size_mb * MB)))

    def _sweep(self):
        pages = self.data.page_range()
        for chunk in chunked(pages, self.wave_pages):
            wb = WaveBuilder()
            split = int(chunk.size * (1.0 - self.write_fraction))
            wb.read(chunk[:split], self.accesses_per_page)
            wb.write(chunk[split:], self.accesses_per_page)
            yield wb.build()

    def kernels(self):
        for it in range(self.iterations):
            yield KernelLaunch("stream.sweep", it, self._sweep)


class RandomWorkload(Workload):
    """Minimal synthetic workload: uniform random single accesses."""

    name = "randacc"
    category = Category.IRREGULAR

    def __init__(self, size_mb: float = 16, n_waves: int = 32,
                 wave_accesses: int = 256, seed: int = 7,
                 write: bool = True) -> None:
        super().__init__()
        self.size_mb = size_mb
        self.n_waves = n_waves
        self.wave_accesses = wave_accesses
        self.seed = seed
        self.write = write

    def _allocate(self, vas, rng) -> None:
        self.data = self._register(
            vas.malloc_managed("randacc.data", int(self.size_mb * MB)))

    def _waves(self):
        rng = np.random.default_rng(self.seed)
        for _ in range(self.n_waves):
            pages = rng.integers(self.data.first_page, self.data.last_page,
                                 size=self.wave_accesses, dtype=np.int64)
            flags = np.full(pages.shape, self.write, dtype=bool)
            yield Wave(np.unique(pages), flags[:np.unique(pages).size])

    def kernels(self):
        yield KernelLaunch("randacc.kernel", 0, self._waves)


@pytest.fixture
def stream_workload() -> StreamWorkload:
    """Small streaming workload."""
    return StreamWorkload()


@pytest.fixture
def random_workload() -> RandomWorkload:
    """Small random-access workload."""
    return RandomWorkload()
