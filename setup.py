"""Legacy setuptools shim.

The metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on environments whose setuptools predates
PEP 660 editable installs (no ``wheel`` package required).
"""

from setuptools import setup

setup()
